"""The load-bearing invariant: observing a run must not change it.

The observability layer only reads simulation state -- it never charges
cycles, takes locks, or touches frames. These tests run the same
fixed-seed workload with and without full instrumentation and require
bit-identical counters and an identical simulated clock. The second
tier (span stitching, windowed time series, the wall-clock
self-profiler) is held to the same bar, and one anchor cell is checked
against the committed quick bench baseline so the invariant is pinned
to numbers in the repository, not just to a sibling run.
"""

import json
from pathlib import Path

import pytest

from repro.bench.runner import build_machine, run_experiment
from repro.obs.export import counter_digest
from repro.workloads import ZipfianMicrobench

BASELINE = Path(__file__).resolve().parents[2] / "benchmarks/baselines/quick.json"
JOB_ID = "cell/A/nomad/small/w0/a20000/s42"


def _run(with_obs: bool = False, tier2: bool = False):
    machine = build_machine("A", "nomad")
    if with_obs:
        machine.obs.enable(sample_period=10_000.0)
    if tier2:
        machine.obs.enable_timeseries(window_cycles=20_000.0)  # implies spans
        machine.obs.enable_selfprof()
    workload = ZipfianMicrobench.scenario(
        "medium", write_ratio=0.3, total_accesses=15_000, seed=7
    )
    machine.run_workload(workload)
    return machine


def test_observation_changes_no_counters_or_clock():
    plain = _run(with_obs=False)
    traced = _run(with_obs=True)
    assert plain.stats.snapshot() == traced.stats.snapshot()
    assert plain.engine.now == traced.engine.now
    # And the instrumented run did actually record things.
    assert traced.obs.records()
    assert traced.obs.sampler.series["nomad.mpq_depth"]


def test_second_tier_changes_no_counters_or_clock():
    plain = _run()
    tiered = _run(with_obs=True, tier2=True)
    assert plain.stats.snapshot() == tiered.stats.snapshot()
    assert plain.engine.now == tiered.engine.now
    # All three second-tier views actually collected data.
    assert tiered.obs.spans.spans()
    tiered.obs.timeseries.finish()
    assert tiered.obs.timeseries.as_rows()
    assert tiered.obs.selfprof.total_ns > 0


def test_report_has_no_obs_summary_when_disabled():
    machine = build_machine("A", "nomad")
    report = machine.run_workload(
        ZipfianMicrobench.scenario("small", total_accesses=2_000, seed=3)
    )
    assert report.obs is None
    assert report.selfprof is None


@pytest.fixture(scope="module")
def baseline_job():
    report = json.loads(BASELINE.read_text())
    jobs = {job["id"]: job for job in report["jobs"]}
    assert JOB_ID in jobs, f"baseline lost its anchor job {JOB_ID}"
    return jobs[JOB_ID]


def test_second_tier_matches_committed_baseline(baseline_job):
    """The anchor cell with every tier enabled reproduces quick.json."""
    result = run_experiment(
        "A",
        "nomad",
        lambda: ZipfianMicrobench.scenario(
            "small", write_ratio=0.0, total_accesses=20_000, seed=42
        ),
        instrument=True,
    )
    machine = result.machine
    # Too late to observe this run, but enabling must also be harmless
    # on a machine that already ran (idempotent plumbing) ...
    machine.obs.enable_spans()

    # ... and the real check: a fresh anchor cell with spans, windows,
    # and the profiler live from the start is still bit-exact.
    machine = build_machine("A", "nomad")
    machine.obs.enable_timeseries(window_cycles=50_000.0)
    machine.obs.enable_selfprof()
    workload = ZipfianMicrobench.scenario(
        "small", write_ratio=0.0, total_accesses=20_000, seed=42
    )
    report = machine.run_workload(workload)
    assert report.cycles == baseline_job["sim_cycles"]
    assert counter_digest(report.counters) == baseline_job["counter_digest"]
    # The instrumented result also matches the plain instrumented run.
    assert result.report.cycles == report.cycles
    assert counter_digest(result.report.counters) == counter_digest(
        report.counters
    )
