"""The load-bearing invariant: observing a run must not change it.

The observability layer only reads simulation state -- it never charges
cycles, takes locks, or touches frames. These tests run the same
fixed-seed workload with and without full instrumentation and require
bit-identical counters and an identical simulated clock.
"""

from repro.bench.runner import build_machine
from repro.workloads import ZipfianMicrobench


def _run(with_obs: bool):
    machine = build_machine("A", "nomad")
    if with_obs:
        machine.obs.enable(sample_period=10_000.0)
    workload = ZipfianMicrobench.scenario(
        "medium", write_ratio=0.3, total_accesses=15_000, seed=7
    )
    machine.run_workload(workload)
    return machine


def test_observation_changes_no_counters_or_clock():
    plain = _run(with_obs=False)
    traced = _run(with_obs=True)
    assert plain.stats.snapshot() == traced.stats.snapshot()
    assert plain.engine.now == traced.engine.now
    # And the instrumented run did actually record things.
    assert traced.obs.records()
    assert traced.obs.sampler.series["nomad.mpq_depth"]


def test_report_has_no_obs_summary_when_disabled():
    machine = build_machine("A", "nomad")
    report = machine.run_workload(
        ZipfianMicrobench.scenario("small", total_accesses=2_000, seed=3)
    )
    assert report.obs is None
