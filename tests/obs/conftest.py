"""One shared instrumented run for the sampler/exporter tests."""

import pytest

from repro.bench.runner import build_machine
from repro.workloads import ZipfianMicrobench


@pytest.fixture(scope="session")
def traced_run():
    """A pressured Nomad cell run once with full observability enabled."""
    machine = build_machine("A", "nomad")
    machine.obs.enable(sample_period=25_000.0)
    workload = ZipfianMicrobench.scenario(
        "medium", write_ratio=0.3, total_accesses=20_000
    )
    report = machine.run_workload(workload)
    return machine, report
