"""Span stitching: tracepoints -> typed lifecycle intervals.

Unit tests feed synthetic :class:`TraceRecord` streams straight into the
tracker (no machine needed -- the tracker only reads what it is handed),
then one integration test pins the ISSUE acceptance criterion: a
thrashing run yields at least one TPM abort span with a named phase
breakdown.
"""

import json

from repro.bench.runner import build_machine
from repro.obs.spans import (
    SPAN_KINDS,
    SpanTracker,
    spans_to_chrome,
    spans_to_jsonl,
)
from repro.obs.tracepoints import TraceRecord
from repro.workloads import ZipfianMicrobench


def rec(ts, name, **args):
    return TraceRecord(float(ts), name, args)


def tracker(**kwargs):
    return SpanTracker(machine=None, **kwargs)


def feed(t, *records):
    for record in records:
        t.feed(record)


# ----------------------------------------------------------------------
# TPM spans
# ----------------------------------------------------------------------
def test_tpm_commit_span_with_chunk_children():
    t = tracker()
    feed(
        t,
        rec(100, "tpm.begin", vpn=7, attempt=0),
        rec(150, "tpm.chunk", vpn=7, chunk=0, nr_chunks=2, dirty=False),
        rec(200, "tpm.chunk", vpn=7, chunk=1, nr_chunks=2, dirty=False),
        rec(250, "tpm.commit", vpn=7, copy_cycles=100.0, total_cycles=150.0),
    )
    (span,) = t.spans()
    assert span.kind == "tpm"
    assert span.key == 7
    assert (span.start, span.end) == (100.0, 250.0)
    assert span.outcome == "commit"
    assert span.phases == {"copy": 100.0, "protocol": 50.0}
    assert span.attrs["attempt"] == 0
    assert [c["name"] for c in span.children] == ["chunk0", "chunk1"]
    # Children tile the parent contiguously from its start.
    assert span.children[0]["start"] == 100.0
    assert span.children[0]["end"] == span.children[1]["start"] == 150.0
    assert not t.open_count()


def test_tpm_abort_mid_chunk_names_reason_and_keeps_children():
    t = tracker()
    feed(
        t,
        rec(0, "tpm.begin", vpn=3, attempt=1),
        rec(40, "tpm.chunk", vpn=3, chunk=0, nr_chunks=4, dirty=False),
        rec(70, "tpm.chunk", vpn=3, chunk=1, nr_chunks=4, dirty=True),
        rec(
            90, "tpm.abort", vpn=3, reason="chunk_dirty",
            copy_cycles=60.0, total_cycles=90.0,
        ),
    )
    (span,) = t.spans()
    assert span.outcome == "abort:chunk_dirty"
    assert span.phases == {"copy": 60.0, "protocol": 30.0}
    # The dirty chunk that killed the transaction is visible.
    assert [c["dirty"] for c in span.children] == [False, True]


def test_reopened_begin_restarts_span():
    t = tracker()
    feed(
        t,
        rec(0, "tpm.begin", vpn=5, attempt=0),
        rec(10, "tpm.begin", vpn=5, attempt=1),
        rec(20, "tpm.commit", vpn=5, copy_cycles=5.0, total_cycles=10.0),
    )
    assert t.reopened == 1
    (span,) = t.spans()
    assert span.start == 10.0 and span.attrs["attempt"] == 1


# ----------------------------------------------------------------------
# MPQ / shadow / sync-fallback spans
# ----------------------------------------------------------------------
def test_mpq_residency_span():
    t = tracker()
    feed(
        t,
        rec(10, "mpq.enqueue", vpn=9, depth=1),
        rec(60, "mpq.dequeue", vpn=9, wait_cycles=50.0, depth=0),
    )
    (span,) = t.spans()
    assert span.kind == "mpq"
    assert span.outcome == "dequeue"
    assert span.phases == {"queue_wait": 50.0}
    assert span.attrs["enqueue_depth"] == 1


def test_mpq_drop_without_enqueue_is_orphan_not_error():
    t = tracker()
    t.feed(rec(5, "mpq.drop", vpn=1, reason="full", depth=16))
    assert t.orphan_ends == 1
    assert not t.spans()


def test_shadow_lifetime_span():
    t = tracker()
    feed(
        t,
        rec(100, "shadow.create", gpfn=42, vpn=7, pages=1),
        rec(900, "shadow.drop", gpfn=42, reason="fault", pages=1),
    )
    (span,) = t.spans()
    assert span.kind == "shadow"
    assert span.key == 42
    assert span.outcome == "fault"
    assert span.duration == 800.0


def test_sync_fallback_closed_only_by_promotion_direction_sync():
    from repro.mem.tiers import FAST_TIER, SLOW_TIER

    t = tracker()
    t.feed(rec(0, "migrate.sync_fallback", vpn=11, mapcount=3))
    # A kswapd demotion sync in between must not close the fallback.
    t.feed(
        rec(5, "migrate.sync", src_tier=FAST_TIER, dst_tier=SLOW_TIER,
            success=True, reason="", retries=0)
    )
    assert t.open_count() == 1
    t.feed(
        rec(9, "migrate.sync", src_tier=SLOW_TIER, dst_tier=FAST_TIER,
            success=True, reason="", retries=1)
    )
    (span,) = t.spans()
    assert span.kind == "sync_fallback"
    assert span.outcome == "success"
    assert span.attrs == {"vpn": 11, "mapcount": 3, "retries": 1}


# ----------------------------------------------------------------------
# Ring bounds
# ----------------------------------------------------------------------
def test_span_ring_overflow_counts_drops():
    t = tracker(capacity=4, overwrite=True)
    for i in range(10):
        feed(
            t,
            rec(i * 10, "mpq.enqueue", vpn=i, depth=0),
            rec(i * 10 + 5, "mpq.dequeue", vpn=i, wait_cycles=5.0, depth=0),
        )
    assert len(t.spans()) == 4
    assert t.dropped == 6
    summary = t.summary()
    assert summary["completed"] == 4
    assert summary["dropped"] == 6
    # The ring keeps the newest spans.
    assert [s.key for s in t.spans()] == [6, 7, 8, 9]


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def _overlapping_spans():
    t = tracker()
    feed(
        t,
        rec(100, "tpm.begin", vpn=7, attempt=0),
        rec(150, "tpm.chunk", vpn=7, chunk=0, nr_chunks=2, dirty=False),
        rec(180, "tpm.chunk", vpn=7, chunk=1, nr_chunks=2, dirty=True),
        rec(
            200, "tpm.abort", vpn=7, reason="chunk_dirty",
            copy_cycles=80.0, total_cycles=100.0,
        ),
        rec(100, "shadow.create", gpfn=12, vpn=7, pages=1),
        rec(400, "shadow.drop", gpfn=12, reason="reclaim", pages=1),
    )
    return t.spans()


def test_jsonl_export_schema_roundtrip():
    text = spans_to_jsonl(_overlapping_spans())
    lines = text.strip().splitlines()
    assert len(lines) == 2
    for line in lines:
        span = json.loads(line)
        assert set(span) == {
            "kind", "key", "start", "end", "outcome",
            "phases", "attrs", "children",
        }
        assert span["kind"] in SPAN_KINDS


def test_chrome_export_nests_children_inside_parent():
    doc = spans_to_chrome(_overlapping_spans(), freq_ghz=2.0)
    events = doc["traceEvents"]
    slices = [e for e in events if e["ph"] == "X"]
    metas = [e for e in events if e["ph"] == "M"]
    # Slices only -- never instants -- and one named lane per kind.
    assert not [e for e in events if e["ph"] == "i"]
    assert {m["args"]["name"] for m in metas} == {"span:tpm", "span:shadow"}

    parent = next(s for s in slices if s["name"] == "tpm:abort:chunk_dirty")
    children = [s for s in slices if s["name"].startswith("chunk")]
    assert len(children) == 2
    for child in children:
        assert child["tid"] == parent["tid"]
        assert child["ts"] >= parent["ts"]
        assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"] + 1e-9
    # Sort order puts the parent before its same-ts first child, which
    # is what makes Perfetto render the children as nested.
    first_child = min(children, key=lambda c: c["ts"])
    assert slices.index(parent) < slices.index(first_child)
    # Both kinds overlap in time but live on distinct lanes.
    shadow = next(s for s in slices if s["name"].startswith("shadow:"))
    assert shadow["tid"] != parent["tid"]


def test_chrome_export_carries_phases_in_args():
    doc = spans_to_chrome(_overlapping_spans(), freq_ghz=2.0)
    parent = next(
        e for e in doc["traceEvents"]
        if e["ph"] == "X" and e["name"].startswith("tpm:")
    )
    assert parent["args"]["phases"] == {"copy": 80.0, "protocol": 20.0}
    assert parent["args"]["outcome"] == "abort:chunk_dirty"


# ----------------------------------------------------------------------
# Integration: the ISSUE acceptance criterion
# ----------------------------------------------------------------------
def test_thrashing_run_produces_abort_spans_with_phases():
    machine = build_machine("A", "nomad")
    tracker = machine.obs.enable_spans()
    workload = ZipfianMicrobench.scenario(
        "medium", write_ratio=1.0, total_accesses=20_000, seed=42
    )
    machine.run_workload(workload)
    aborts = [
        s for s in tracker.select("tpm") if s.outcome.startswith("abort:")
    ]
    assert aborts, "all-write thrashing run produced no TPM abort spans"
    span = aborts[0]
    assert set(span.phases) == {"copy", "protocol"}
    assert span.phases["copy"] >= 0 and span.phases["protocol"] >= 0
    assert span.duration > 0
    # The summary surfaces the same thing for RunReport consumers.
    by_outcome = tracker.summary()["by_outcome"]
    assert any(k.startswith("tpm:abort:") for k in by_outcome)
