"""Per-tenant windowed time series: attribution, schema, invariance."""

import csv
import io
import json

import numpy as np
import pytest

from repro.obs.export import counter_digest
from repro.obs.tenants import (
    TENANT_TIMESERIES_COLUMNS,
    TenantRange,
    TenantSeriesAggregator,
    tenant_timeseries_to_csv,
    tenant_timeseries_to_json,
)
from repro.obs.tracepoints import TraceRecord
from repro.policies import make_policy
from repro.workloads import StreamingTraceWorkload, build_trace

from ..conftest import make_machine


def make_tenant_machine(tmp_path, nr_tenants=2, accesses=2500, pages=120):
    """A machine with ``nr_tenants`` namespaced trace tenants bound."""
    manifest = build_trace(
        tmp_path / "shared", "zipf-drift",
        nr_pages=pages, accesses=accesses, seed=17,
    )
    m = make_machine(fast_gb=1.0, slow_gb=2.0)
    m.set_policy(make_policy("nomad", m))
    workloads, ranges = [], []
    base = 0
    for i in range(nr_tenants):
        w = StreamingTraceWorkload(
            manifest, vpn_base=base, name=f"t{i}", fast_fraction=0.0,
        )
        w.bind(m)
        ranges.append(TenantRange(f"t{i}", w._start, w._start + pages,
                                  workload=w))
        workloads.append(w)
        base += pages
    return m, workloads, ranges


def test_tenant_range_validation():
    with pytest.raises(ValueError, match="non-empty and non-negative"):
        TenantRange("x", -1, 4)
    with pytest.raises(ValueError, match="non-empty and non-negative"):
        TenantRange("x", 5, 5)


def test_aggregator_validation(machine):
    r = [TenantRange("a", 0, 10), TenantRange("b", 5, 20)]
    with pytest.raises(ValueError, match="ranges overlap"):
        TenantSeriesAggregator(machine, r)
    with pytest.raises(ValueError, match="at least one tenant"):
        TenantSeriesAggregator(machine, [])
    with pytest.raises(ValueError, match="window_cycles must be positive"):
        TenantSeriesAggregator(machine, r[:1], window_cycles=0)


def record(name, **args):
    return TraceRecord(ts=0.0, name=name, args=args)


def test_feed_attributes_by_vpn_range(machine):
    agg = TenantSeriesAggregator(
        machine,
        [TenantRange("a", 0, 100), TenantRange("b", 100, 200)],
    )
    agg.feed(record("tpm.commit", vpn=7))
    agg.feed(record("tpm.abort", vpn=7, reason="pinned"))
    agg.feed(record("tpm.commit", vpn=150))
    agg.feed(record("mpq.enqueue", vpn=199))
    agg.feed(record("tpm.commit", vpn=500))  # outside every range
    agg.feed(record("fault.page", vpn=7))  # not a consumed tracepoint
    totals = agg.totals()
    assert totals["a"]["tpm_commits"] == 1
    assert totals["a"]["tpm_aborts"] == 1
    assert totals["b"]["tpm_commits"] == 1
    assert totals["b"]["mpq_enqueues"] == 1
    assert agg.unattributed == 1


def test_feed_counts_only_promotion_direction_sync(machine):
    agg = TenantSeriesAggregator(machine, [TenantRange("a", 0, 100)])
    agg.feed(record("migrate.sync", vpn=3, src_tier=1, dst_tier=0,
                    success=True))
    agg.feed(record("migrate.sync", vpn=3, src_tier=0, dst_tier=1,
                    success=True))  # demotion direction
    agg.feed(record("migrate.sync", vpn=3, src_tier=1, dst_tier=0,
                    success=False))  # failed
    assert agg.totals()["a"]["sync_promotions"] == 1
    assert agg.totals()["a"]["promotions"] == 1  # commits + sync


def test_corun_attribution_partitions_machine_counters(tmp_path):
    """Every TPM commit the machine performs lands in exactly one
    tenant's bucket (the namespaces cover all trace vpns)."""
    m, workloads, ranges = make_tenant_machine(tmp_path)
    agg = m.obs.enable_tenant_series(ranges, window_cycles=50_000.0)
    m.run_workloads(workloads)
    agg.finish()
    totals = agg.totals()
    commits = m.stats.get("nomad.tpm_commits")
    attributed = sum(t["tpm_commits"] for t in totals.values())
    assert commits > 0  # slow-tier placement forces promotions
    assert attributed == commits
    assert agg.unattributed == 0
    # Executed-access accounting is exact per tenant.
    for i, w in enumerate(workloads):
        assert totals[f"t{i}"]["accesses"] == w.total_accesses


def test_rows_schema_and_window_monotonicity(tmp_path):
    m, workloads, ranges = make_tenant_machine(tmp_path)
    agg = m.obs.enable_tenant_series(ranges, window_cycles=20_000.0)
    m.run_workloads(workloads)
    agg.finish()
    rows = agg.as_rows()
    assert len(rows) >= 4  # at least two windows x two tenants
    for row in rows:
        assert set(TENANT_TIMESERIES_COLUMNS) <= set(row)
        assert row["t_end"] > row["t_start"]
        assert row["promotions"] == row["tpm_commits"] + row["sync_promotions"]
        assert 0.0 <= row["abort_rate"] <= 1.0
    # Per-tenant window sequences are contiguous and share boundaries.
    per_tenant = {}
    for row in rows:
        per_tenant.setdefault(row["tenant"], []).append(row)
    for series in per_tenant.values():
        for prev, cur in zip(series, series[1:]):
            assert cur["t_start"] == prev["t_end"]
    # Window accesses sum to the executed totals.
    for i, w in enumerate(workloads):
        got = sum(r["accesses"] for r in per_tenant[f"t{i}"])
        assert got == w.total_accesses


def test_csv_and_json_exports(tmp_path):
    m, workloads, ranges = make_tenant_machine(tmp_path)
    agg = m.obs.enable_tenant_series(ranges, window_cycles=30_000.0)
    m.run_workloads(workloads)
    text = tenant_timeseries_to_csv(agg)
    reader = csv.reader(io.StringIO(text))
    header = next(reader)
    assert header == list(TENANT_TIMESERIES_COLUMNS)
    body = list(reader)
    assert body and all(len(r) == len(header) for r in body)
    doc = json.loads(tenant_timeseries_to_json(agg))
    assert doc["window_cycles"] == 30_000.0
    assert doc["unattributed"] == 0
    assert [t["name"] for t in doc["tenants"]] == ["t0", "t1"]
    assert len(doc["rows"]) == len(body)


def test_enable_tenant_series_is_idempotent_and_in_summary(tmp_path):
    m, workloads, ranges = make_tenant_machine(tmp_path)
    agg = m.obs.enable_tenant_series(ranges)
    assert m.obs.enable_tenant_series(ranges) is agg
    m.run_workloads(workloads)
    summary = m.obs.summary()
    assert summary["tenant_series"]["tenants"] == 2
    assert summary["tenant_series"]["unattributed"] == 0


def test_tenant_series_does_not_perturb_simulation(tmp_path):
    """Obs invariance: enabling the tenant layer changes no simulated
    quantity -- counters and the clock are bit-identical."""

    def run(with_obs):
        m, workloads, ranges = make_tenant_machine(tmp_path / str(with_obs))
        if with_obs:
            m.obs.enable_tenant_series(ranges, window_cycles=10_000.0)
        m.run_workloads(workloads)
        return counter_digest(m.stats.snapshot()), m.engine.now

    assert run(False) == run(True)


def test_find_ignores_malformed_vpns(machine):
    agg = TenantSeriesAggregator(machine, [TenantRange("a", 0, 10)])
    agg.feed(record("tpm.commit"))  # no vpn at all
    agg.feed(record("tpm.commit", vpn="seven"))
    agg.feed(record("tpm.commit", vpn=-3))
    assert agg.totals()["a"]["tpm_commits"] == 0
    assert agg.unattributed == 3


def test_numpy_integer_vpns_are_attributed(machine):
    """Tracepoints carry numpy ints on the fast path; attribution must
    not silently drop them."""
    agg = TenantSeriesAggregator(machine, [TenantRange("a", 0, 10)])
    agg.feed(record("tpm.commit", vpn=np.int64(4)))
    assert agg.totals()["a"]["tpm_commits"] == 1
