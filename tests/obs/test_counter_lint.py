"""Counter-name lint: every literal ``bump("...")`` in src/ is registered.

The registry in :mod:`repro.obs.counters` plays the role of the kernel's
``vm_event_item`` enum -- a typo'd counter name should fail loudly, not
silently create a new always-zero metric. This test AST-scans the source
tree so the check runs without importing (or executing) any policy code.
"""

import ast
from pathlib import Path

from repro.obs.counters import COUNTERS, is_registered, register_counter

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def iter_bump_literals():
    """Yield (path, lineno, name) for every ``*.bump("literal", ...)``."""
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "bump"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                yield path, node.lineno, node.args[0].value


def iter_bump_fstring_prefixes():
    """Yield the literal head of every f-string bump name.

    Dynamic names like ``f"fault.{kind.value}"`` can't be checked exactly;
    their constant prefix must still match at least one registered name.
    """
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "bump"
                and node.args
                and isinstance(node.args[0], ast.JoinedStr)
            ):
                parts = node.args[0].values
                if parts and isinstance(parts[0], ast.Constant):
                    yield path, node.lineno, str(parts[0].value)


def iter_tier_key_bumps():
    """Yield (path, lineno, kind) for ``bump(tier_migration_key(...))``.

    Per-tier migration counters go through the precomputed-key helper
    instead of literals; the helper's ``kind`` argument must still be a
    known literal so the generated ``migrate.<kind>_to_tier<N>`` family
    stays inside the registry.
    """
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "bump"
                and node.args
                and isinstance(node.args[0], ast.Call)
            ):
                continue
            inner = node.args[0]
            func = inner.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else getattr(func, "attr", "")
            )
            if name != "tier_migration_key":
                continue
            kind = None
            if inner.args and isinstance(inner.args[0], ast.Constant):
                kind = inner.args[0].value
            yield path, node.lineno, kind


def test_every_literal_bump_name_is_registered():
    unregistered = [
        f"{path.relative_to(SRC.parent.parent)}:{lineno}: {name!r}"
        for path, lineno, name in iter_bump_literals()
        if not is_registered(name)
    ]
    assert not unregistered, (
        "counter names bumped but missing from repro.obs.counters.COUNTERS "
        "(register them there with a help string):\n  "
        + "\n  ".join(unregistered)
    )


def test_fstring_bump_prefixes_match_registered_counters():
    bad = [
        f"{path.relative_to(SRC.parent.parent)}:{lineno}: {prefix!r}"
        for path, lineno, prefix in iter_bump_fstring_prefixes()
        if not any(name.startswith(prefix) for name in COUNTERS)
    ]
    assert not bad, "dynamic bump names with unregistered prefixes:\n  " + "\n  ".join(bad)


def test_tier_migration_key_bumps_use_known_literal_kinds():
    sites = list(iter_tier_key_bumps())
    # The chain-aware migration paths (kernel sync, TPM, remap demotion)
    # all route per-tier flux through the helper.
    assert len(sites) >= 4, "tier_migration_key bump sites disappeared"
    bad = [
        f"{path.relative_to(SRC.parent.parent)}:{lineno}: kind={kind!r}"
        for path, lineno, kind in sites
        if kind not in ("promote", "demote")
        or not any(
            name.startswith(f"migrate.{kind}_to_tier") for name in COUNTERS
        )
    ]
    assert not bad, (
        "tier_migration_key called with a non-literal or unregistered "
        "kind:\n  " + "\n  ".join(bad)
    )


def test_scan_is_not_vacuous():
    """The AST walk actually finds the instrumentation sites."""
    names = {name for _, _, name in iter_bump_literals()}
    assert "nomad.tpm_commits" in names
    assert "migrate.promotions" in names
    assert "kswapd.passes" in names
    assert len(names) >= 30


def test_register_counter_rejects_conflicting_help():
    register_counter("test.lint_probe", "probe")
    register_counter("test.lint_probe", "probe")  # same help: idempotent
    try:
        import pytest

        with pytest.raises(ValueError):
            register_counter("test.lint_probe", "different help")
    finally:
        del COUNTERS["test.lint_probe"]
