"""Windowed time-series aggregation and its CSV/JSON exporters."""

import csv
import io
import json

from repro.bench.runner import build_machine
from repro.obs.timeseries import (
    TIMESERIES_COLUMNS,
    timeseries_to_csv,
    timeseries_to_json,
)
from repro.workloads import ZipfianMicrobench


def _aggregated_run(window_cycles=50_000.0, write_ratio=0.7, accesses=15_000):
    machine = build_machine("A", "nomad")
    agg = machine.obs.enable_timeseries(window_cycles=window_cycles)
    workload = ZipfianMicrobench.scenario(
        "medium", write_ratio=write_ratio, total_accesses=accesses, seed=11
    )
    machine.run_workload(workload)
    agg.finish()
    return machine, agg


def test_windows_tile_the_run_monotonically():
    machine, agg = _aggregated_run()
    rows = agg.as_rows()
    assert len(rows) >= 2
    for prev, cur in zip(rows, rows[1:]):
        assert cur["t_start"] == prev["t_end"]
        assert cur["t_end"] > cur["t_start"]
    # The final (partial) window reaches the end of the run.
    assert rows[-1]["t_end"] == machine.engine.now


def test_window_deltas_sum_to_counter_totals():
    machine, agg = _aggregated_run()
    rows = agg.as_rows()
    assert agg.rows.dropped == 0  # else the sum would under-count
    for col, counter in (
        ("tpm_commits", "nomad.tpm_commits"),
        ("tpm_aborts", "nomad.tpm_aborts"),
        ("promotions", "migrate.promotions"),
        ("faults", "fault.total"),
    ):
        window_sum = sum(row[col] for row in rows)
        assert window_sum == machine.stats.counters.get(counter, 0.0), col


def test_abort_rate_and_latency_percentiles_are_sane():
    _machine, agg = _aggregated_run()
    rows = agg.as_rows()
    migrating = [r for r in rows if r["spans_closed"]]
    assert migrating, "a write-heavy medium cell must close TPM spans"
    for row in rows:
        assert 0.0 <= row["abort_rate"] <= 1.0
        if row["spans_closed"]:
            assert 0 < row["tpm_p50_cycles"] <= row["tpm_p99_cycles"]
        else:
            assert row["tpm_p50_cycles"] == row["tpm_p99_cycles"] == 0.0
        # Nomad gauges read at the window boundary are present.
        assert row["nomad_mpq_depth"] is not None
        assert row["mem_fast_free_pages"] is not None


def test_csv_export_matches_fixed_schema():
    _machine, agg = _aggregated_run()
    text = timeseries_to_csv(agg)
    rows = list(csv.reader(io.StringIO(text)))
    assert tuple(rows[0]) == TIMESERIES_COLUMNS
    assert len(rows) == len(agg.as_rows()) + 1
    width = len(TIMESERIES_COLUMNS)
    for row in rows[1:]:
        assert len(row) == width
        float(row[0]), float(row[1])  # window bounds parse


def test_json_export_carries_window_meta():
    _machine, agg = _aggregated_run()
    doc = json.loads(timeseries_to_json(agg))
    assert doc["window_cycles"] == 50_000.0
    assert doc["dropped"] == 0
    assert len(doc["rows"]) == len(agg.as_rows())
    assert set(TIMESERIES_COLUMNS) <= set(doc["rows"][0])


def test_on_window_callback_sees_every_closed_row():
    machine = build_machine("A", "nomad")
    agg = machine.obs.enable_timeseries(window_cycles=25_000.0)
    seen = []
    agg.on_window(seen.append)
    workload = ZipfianMicrobench.scenario(
        "small", write_ratio=0.0, total_accesses=5_000, seed=3
    )
    machine.run_workload(workload)
    agg.finish()
    assert seen == agg.as_rows()


def test_finish_is_idempotent():
    _machine, agg = _aggregated_run()
    n = len(agg.as_rows())
    agg.finish()
    agg.finish()
    assert len(agg.as_rows()) == n
