"""Exporters: JSONL, CSV, Prometheus exposition, Chrome Trace."""

import json
import re

from repro.obs.counters import COUNTERS
from repro.obs.export import (
    chrome_trace,
    events_to_csv,
    events_to_jsonl,
    gauges_to_csv,
    metric_name,
    prometheus_text,
    write_obs_outputs,
)
from repro.obs.sampler import GAUGES
from repro.obs.tracepoints import TraceRecord

_PROM_SAMPLE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$")


def test_metric_name_sanitization():
    assert metric_name("nomad.tpm_commits") == "repro_nomad_tpm_commits"
    assert metric_name("mpq.wait-cycles") == "repro_mpq_wait_cycles"


def test_jsonl_round_trips():
    records = [
        TraceRecord(1.0, "tpm.begin", {"vpn": 7, "attempt": 0}),
        TraceRecord(2.0, "shadow.fault", {"vpn": 7, "gpfn": 3}),
    ]
    lines = events_to_jsonl(records).splitlines()
    assert len(lines) == 2
    parsed = [json.loads(line) for line in lines]
    assert parsed[0] == {"ts": 1.0, "name": "tpm.begin", "args": {"vpn": 7, "attempt": 0}}


def test_jsonl_empty_stream_is_empty_string():
    assert events_to_jsonl([]) == ""


def test_events_csv_header_and_rows():
    text = events_to_csv([TraceRecord(1.0, "tpm.begin", {"vpn": 7, "attempt": 0})])
    lines = text.splitlines()
    assert lines[0] == "time_cycles,name,args"
    assert lines[1].startswith("1.0,tpm.begin,")


def test_prometheus_contains_every_registered_counter_and_gauge(traced_run):
    """Acceptance: the exposition covers the full registry, even zeros."""
    machine, _report = traced_run
    text = prometheus_text(
        machine.stats, machine.obs.sampler, machine.obs.histograms
    )
    for name in COUNTERS:
        assert metric_name(name) + "_total" in text, name
    for name in GAUGES:
        assert metric_name(name) + " " in text, name
    # Histograms follow the cumulative bucket convention.
    assert 'repro_tpm_copy_cycles_bucket{le="+Inf"}' in text
    assert "repro_tpm_copy_cycles_count" in text
    assert "repro_tpm_copy_cycles_sum" in text


def test_prometheus_lines_are_well_formed(traced_run):
    machine, _report = traced_run
    text = prometheus_text(
        machine.stats, machine.obs.sampler, machine.obs.histograms
    )
    for line in text.splitlines():
        if line.startswith("#"):
            assert line.startswith(("# HELP ", "# TYPE ")), line
        else:
            assert _PROM_SAMPLE.match(line), line


def test_prometheus_without_sampler_reports_zero_gauges(machine):
    text = prometheus_text(machine.stats)
    assert metric_name("nomad.mpq_depth") + " 0" in text


def test_chrome_trace_structure(traced_run):
    """Acceptance: the trace JSON is Perfetto-loadable in shape."""
    machine, _report = traced_run
    doc = json.loads(
        json.dumps(
            chrome_trace(
                machine.obs.records(),
                machine.obs.sampler,
                machine.platform.freq_ghz,
            )
        )
    )
    events = doc["traceEvents"]
    assert events
    phases = {e["ph"] for e in events}
    assert "X" in phases  # tpm.begin/commit folded into duration slices
    assert "M" in phases  # thread_name metadata
    assert "C" in phases  # gauge counter tracks
    assert "i" in phases  # instant events
    for e in events:
        assert e["pid"] == 1
        if e["ph"] != "M":
            assert e["ts"] >= 0.0
    slices = [e for e in events if e["ph"] == "X"]
    assert all(e["dur"] >= 0.0 for e in slices)
    assert {e["name"] for e in slices} <= {"tpm.commit", "tpm.abort"}
    # Sorted by timestamp so viewers don't need to re-sort.
    ts = [e["ts"] for e in events if e["ph"] != "M"]
    assert ts == sorted(ts)


def test_chrome_trace_unpaired_begin_becomes_instant():
    records = [TraceRecord(5.0, "tpm.begin", {"vpn": 1, "attempt": 0})]
    doc = chrome_trace(records, sampler=None, freq_ghz=2.0)
    (meta, event) = sorted(doc["traceEvents"], key=lambda e: e["ph"])
    assert meta["ph"] == "M"
    assert event["ph"] == "i" and event["name"] == "tpm.begin"


def test_gauges_csv(traced_run):
    machine, _report = traced_run
    text = gauges_to_csv(machine.obs.sampler)
    lines = text.splitlines()
    assert lines[0].startswith("time_cycles,")
    assert "nomad.mpq_depth" in lines[0]
    assert len(lines) >= 3  # header + >= 2 samples


def test_write_obs_outputs_writes_every_format(traced_run, tmp_path):
    machine, _report = traced_run
    paths = write_obs_outputs(machine, tmp_path / "out")
    assert set(paths) == {"jsonl", "csv", "prometheus", "chrome", "gauges"}
    for kind, path in paths.items():
        with open(path) as f:
            content = f.read()
        assert content, kind
    with open(paths["chrome"]) as f:
        assert json.load(f)["traceEvents"]
    with open(paths["jsonl"]) as f:
        for line in f:
            json.loads(line)


def test_report_carries_obs_summary(traced_run):
    machine, report = traced_run
    assert report.obs is not None
    assert report.obs["events"]
    assert "tpm.commit" in report.obs["events"]
    assert "tpm.copy_cycles" in report.obs["histograms"]
    assert report.obs["gauges"]["nomad.mpq_depth"] >= 2
