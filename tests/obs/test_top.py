"""The `repro top` dashboard: pure rendering + the non-TTY driver."""

import io

from repro.bench.runner import build_machine
from repro.obs.top import render_frame, run_top
from repro.workloads import ZipfianMicrobench


def test_render_frame_before_first_window():
    machine = build_machine("A", "nomad")
    frame = render_frame(machine, [])
    assert "waiting for first window" in frame
    assert "NomadPolicy" in frame


def test_render_frame_from_synthetic_rows():
    machine = build_machine("A", "nomad")
    rows = [
        {
            "t_start": 0.0, "t_end": 100_000.0,
            "promotions": 12.0, "demotions": 3.0,
            "tpm_commits": 10.0, "tpm_aborts": 2.0,
            "shadow_faults": 4.0, "faults": 40.0,
            "abort_rate": 2.0 / 12.0,
            "nomad_mpq_depth": 5.0, "nomad_pcq_depth": 7.0,
            "nomad_shadow_pages": 9.0, "mem_fast_free_pages": None,
            "tpm_p50_cycles": 1500.0, "tpm_p99_cycles": 9000.0,
            "spans_closed": 12.0,
        }
    ]
    frame = render_frame(machine, rows)
    assert "abort rate" in frame and "0.167" in frame
    assert "MPQ depth" in frame and "5" in frame
    assert "p99" in frame and "9000" in frame
    # A gauge with no source renders as '-', not a crash.
    assert "fast free" in frame and "-" in frame


def test_run_top_non_tty_prints_sequential_frames():
    machine = build_machine("A", "nomad")
    workload = ZipfianMicrobench.scenario(
        "small", write_ratio=0.5, total_accesses=6_000, seed=9
    )
    out = io.StringIO()
    frames = run_top(machine, workload, window_cycles=100_000.0, out=out)
    text = out.getvalue()
    assert frames >= 1
    assert "\x1b[" not in text  # no ANSI off-TTY
    assert text.count("repro top |") == frames
    assert "rates/window" in text


def test_run_top_refresh_every_nth_window():
    machine = build_machine("A", "nomad")
    workload = ZipfianMicrobench.scenario(
        "small", write_ratio=0.0, total_accesses=6_000, seed=9
    )
    out = io.StringIO()
    frames = run_top(
        machine, workload, window_cycles=50_000.0, out=out,
        refresh_windows=10_000,
    )
    # Only the forced final frame lands.
    assert frames == 1
