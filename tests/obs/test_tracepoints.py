"""The tracepoint catalog, ring buffer, and per-machine ObsManager."""

import pytest

from repro.obs.tracepoints import (
    TRACEPOINTS,
    TraceRecord,
    TraceRing,
    register_tracepoint,
)

from ..conftest import make_machine


# ----------------------------------------------------------------------
# TraceRing drop accounting
# ----------------------------------------------------------------------
def test_overwrite_ring_keeps_newest_and_counts_drops():
    ring = TraceRing(capacity=4, overwrite=True)
    for i in range(10):
        ring.append(i)
    assert len(ring) == 4
    assert ring.records() == [6, 7, 8, 9]
    assert ring.dropped == 6


def test_oneshot_ring_keeps_oldest_and_counts_drops():
    ring = TraceRing(capacity=4, overwrite=False)
    for i in range(10):
        ring.append(i)
    assert len(ring) == 4
    assert ring.records() == [0, 1, 2, 3]
    assert ring.dropped == 6


def test_ring_no_drops_below_capacity():
    ring = TraceRing(capacity=4)
    ring.append(1)
    assert ring.dropped == 0
    assert list(ring) == [1]


def test_ring_clear_resets_drop_counter():
    ring = TraceRing(capacity=1, overwrite=True)
    ring.append(1)
    ring.append(2)
    assert ring.dropped == 1
    ring.clear()
    assert len(ring) == 0 and ring.dropped == 0


def test_ring_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        TraceRing(capacity=0)


# ----------------------------------------------------------------------
# Catalog
# ----------------------------------------------------------------------
def test_catalog_covers_the_instrumented_subsystems():
    for name in (
        "tpm.begin",
        "tpm.commit",
        "tpm.abort",
        "shadow.fault",
        "mpq.enqueue",
        "mpq.drop",
        "mpq.retry",
        "reclaim.pass",
        "migrate.sync_fallback",
    ):
        assert name in TRACEPOINTS
        assert TRACEPOINTS[name].fields


def test_register_tracepoint_rejects_duplicates():
    with pytest.raises(ValueError):
        register_tracepoint("tpm.begin", ("vpn",), "dup")


# ----------------------------------------------------------------------
# ObsManager
# ----------------------------------------------------------------------
def test_emit_is_noop_while_disabled():
    m = make_machine()
    m.obs.emit("tpm.begin", vpn=1, attempt=0)
    m.obs.observe("tpm.copy_cycles", 100.0)
    assert m.obs.records() == []
    assert m.obs.histograms == {}
    assert m.obs.dropped == 0


def test_emit_records_timestamped_event():
    m = make_machine()
    m.obs.enable(sample_period=None)
    m.obs.emit("tpm.begin", vpn=7, attempt=0)
    (rec,) = m.obs.records()
    assert isinstance(rec, TraceRecord)
    assert rec.name == "tpm.begin"
    assert rec.ts == m.engine.now
    assert rec.args == {"vpn": 7, "attempt": 0}
    assert rec.as_dict() == {"ts": rec.ts, "name": "tpm.begin", "args": rec.args}


def test_strict_mode_rejects_unknown_and_misfielded_emits():
    m = make_machine()
    m.obs.enable(sample_period=None)
    with pytest.raises(ValueError):
        m.obs.emit("tpm.bogus", vpn=1)
    with pytest.raises(ValueError):
        m.obs.emit("tpm.begin", vpn=1)  # missing 'attempt'
    with pytest.raises(ValueError):
        m.obs.emit("tpm.begin", vpn=1, attempt=0, extra=1)


def test_lenient_mode_allows_adhoc_events():
    m = make_machine()
    m.obs.enable(sample_period=None, strict=False)
    m.obs.emit("outoftree.event", anything=1)
    assert m.obs.select("outoftree.event")


def test_select_counts_and_summary():
    m = make_machine()
    m.obs.enable(sample_period=None)
    m.obs.emit("tpm.begin", vpn=1, attempt=0)
    m.obs.emit("tpm.begin", vpn=2, attempt=0)
    m.obs.emit("shadow.fault", vpn=1, gpfn=9)
    m.obs.observe("tpm.copy_cycles", 500.0)
    assert len(m.obs.select("tpm.begin")) == 2
    assert m.obs.counts() == {"tpm.begin": 2, "shadow.fault": 1}
    summary = m.obs.summary()
    assert summary["events"] == {"tpm.begin": 2, "shadow.fault": 1}
    assert summary["dropped"] == 0
    assert "tpm.copy_cycles" in summary["histograms"]
    # zero-count histograms are omitted from the digest
    assert "mpq.wait_cycles" not in summary["histograms"]


def test_observe_creates_unspecced_histogram_on_demand():
    m = make_machine()
    m.obs.enable(sample_period=None)
    m.obs.observe("adhoc.cycles", 123.0)
    assert m.obs.histograms["adhoc.cycles"].total == 1


def test_ring_overflow_surfaces_in_dropped_property():
    m = make_machine()
    m.obs.enable(capacity=2, sample_period=None)
    for vpn in range(5):
        m.obs.emit("tpm.begin", vpn=vpn, attempt=0)
    assert len(m.obs.records()) == 2
    assert m.obs.dropped == 3
    assert m.obs.summary()["dropped"] == 3


def test_disable_stops_recording_but_keeps_data():
    m = make_machine()
    m.obs.enable(sample_period=None)
    m.obs.emit("tpm.begin", vpn=1, attempt=0)
    m.obs.disable()
    m.obs.emit("tpm.begin", vpn=2, attempt=0)
    assert len(m.obs.records()) == 1


def test_context_manager_enables_and_disables():
    m = make_machine()
    with m.obs:
        assert m.obs.enabled
        m.obs.emit("tpm.begin", vpn=1, attempt=0)
    assert not m.obs.enabled
    assert len(m.obs.records()) == 1


def test_enable_is_idempotent():
    m = make_machine()
    m.obs.enable(sample_period=None)
    ring = m.obs.ring
    m.obs.enable(sample_period=None)
    assert m.obs.ring is ring
