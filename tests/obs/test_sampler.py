"""The periodic gauge sampler."""

import pytest

from repro.obs.sampler import GAUGES, GaugeSampler, default_gauges

from ..conftest import make_machine


def test_default_gauge_names_all_declared():
    assert set(default_gauges()) == set(GAUGES)


def test_period_must_be_positive():
    with pytest.raises(ValueError):
        GaugeSampler(make_machine(), period=0.0)


def test_sample_skips_policy_gauges_without_a_policy():
    m = make_machine()  # no policy installed
    sampler = GaugeSampler(m)
    sampler.sample()
    assert sampler.series["nomad.mpq_depth"] == []
    assert sampler.series["nomad.shadow_pages"] == []
    assert len(sampler.series["mem.fast_free_pages"]) == 1
    assert sampler.latest("mem.fast_free_pages") == float(m.tiers.fast.nr_free)
    assert sampler.latest("nomad.mpq_depth") is None


def test_periodic_sampling_tracks_engine_time():
    m = make_machine()
    sampler = GaugeSampler(m, period=1000.0).start()
    m.engine.run(until=3500.0)
    times = [ts for ts, _ in sampler.series["mem.fast_free_pages"]]
    assert times == [0.0, 1000.0, 2000.0, 3000.0]


def test_stop_halts_sampling():
    m = make_machine()
    sampler = GaugeSampler(m, period=1000.0).start()
    m.engine.run(until=1500.0)
    sampler.stop()
    before = len(sampler.series["mem.fast_free_pages"])
    m.engine.run(until=5000.0)
    assert len(sampler.series["mem.fast_free_pages"]) == before


def test_custom_gauge_set():
    m = make_machine()
    sampler = GaugeSampler(m, gauges={"x": lambda machine: 42.0})
    sampler.sample()
    assert sampler.series == {"x": [(0.0, 42.0)]}


def test_as_rows_joins_on_timestamp():
    m = make_machine()
    sampler = GaugeSampler(m, period=1000.0).start()
    m.engine.run(until=2500.0)
    rows = sampler.as_rows()
    assert [row["time_cycles"] for row in rows] == [0.0, 1000.0, 2000.0]
    assert all("mem.fast_free_pages" in row for row in rows)
    assert all("nomad.mpq_depth" not in row for row in rows)  # no policy


def test_instrumented_run_collects_gauge_time_series(traced_run):
    """Acceptance: >= 2 samples each for MPQ depth and shadow pages."""
    machine, _report = traced_run
    sampler = machine.obs.sampler
    assert len(sampler.series["nomad.mpq_depth"]) >= 2
    assert len(sampler.series["nomad.shadow_pages"]) >= 2
    # The run actually exercised the queues (not an all-zero series).
    assert max(v for _, v in sampler.series["nomad.mpq_depth"]) > 0
    assert max(v for _, v in sampler.series["nomad.shadow_pages"]) > 0
