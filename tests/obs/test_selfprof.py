"""Wall-clock self-profiler: attribution is a partition of wall time."""

import time

from repro.bench.runner import build_machine
from repro.obs.selfprof import SelfProfiler
from repro.workloads import ZipfianMicrobench


def test_categories_bucket_by_process_name():
    prof = SelfProfiler()
    assert prof.category("app:zipf:app0") == "app"
    assert prof.category("kswapd0") == "kswapd"
    assert prof.category("kpromote") == "kpromote"
    assert prof.category("numa_scanner:app0") == "scanner"
    assert prof.category("obs.timeseries") == "obs"
    assert prof.category("some-test-proc") == "other"


def test_note_accumulates_and_summary_partitions():
    prof = SelfProfiler().start()
    prof.note("app:w", 1000)
    prof.note("app:w", 500)
    prof.note("kswapd0", 200)
    time.sleep(0.001)
    prof.stop()
    s = prof.summary()
    assert s["subsystems"]["app"]["steps"] == 2
    assert s["subsystems"]["app"]["seconds"] >= s["subsystems"]["kswapd"]["seconds"]
    assert s["attributed_s"] <= s["total_wall_s"] + 1e-4


def test_scope_lands_in_detail_not_subsystems():
    prof = SelfProfiler().start()
    with prof.scope("app.slowpath"):
        pass
    prof.stop()
    s = prof.summary()
    assert "app.slowpath" in s["detail"]
    assert "app.slowpath" not in s["subsystems"]


def test_profiled_run_attribution_never_exceeds_wall():
    machine = build_machine("A", "nomad")
    prof = machine.obs.enable_selfprof()
    workload = ZipfianMicrobench.scenario(
        "small", write_ratio=0.5, total_accesses=8_000, seed=5
    )
    report = machine.run_workload(workload)
    prof.stop()
    s = report.selfprof
    assert s is not None
    assert s["total_wall_s"] > 0
    assert sum(
        sub["seconds"] for sub in s["subsystems"].values()
    ) <= s["total_wall_s"] + 1e-4
    # The app thread and at least one daemon were actually attributed.
    assert s["subsystems"]["app"]["steps"] > 0
    assert "kpromote" in s["subsystems"]


def test_disable_detaches_profiler_from_engine():
    machine = build_machine("A", "nomad")
    machine.obs.enable_selfprof()
    assert machine.engine.profiler is machine.obs.selfprof
    machine.obs.disable()
    assert machine.engine.profiler is None


def test_selfprof_probe_shape():
    from repro.bench.baseline import selfprof_probe

    out = selfprof_probe({"accesses": 4_000})
    assert out["cell"].startswith("A/nomad/small/")
    assert out["total_wall_s"] > 0
    assert set(out["subsystems"]) >= {"app"}
