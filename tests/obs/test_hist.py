"""The reusable histogram: bucket semantics, percentiles, merging."""

import numpy as np
import pytest

from repro.obs.hist import Histogram, bucket_values, percentile_from_counts

EDGES = np.array([10.0, 100.0, 1000.0])


# ----------------------------------------------------------------------
# bucket_values
# ----------------------------------------------------------------------
def test_bucket_boundaries():
    # bucket 0: < 10; bucket 1: [10, 100); bucket 2: [100, 1000); over: >= 1000
    counts = bucket_values(EDGES, np.array([5.0, 9.9, 10.0, 99.0, 100.0, 999.0, 1000.0]))
    assert counts.tolist() == [2, 2, 2, 1]


def test_bucket_count_is_edges_plus_one():
    assert len(bucket_values(EDGES, np.array([]))) == len(EDGES) + 1


# ----------------------------------------------------------------------
# percentile_from_counts
# ----------------------------------------------------------------------
def test_percentile_empty_histogram_is_zero():
    assert percentile_from_counts(np.zeros(4, dtype=np.int64), EDGES, 50.0) == 0.0


def test_percentile_first_bucket_reports_its_upper_edge():
    # Every value below edges[0]: the containing bucket's upper edge is
    # edges[0], same convention as every other bucket.
    counts = bucket_values(EDGES, np.array([1.0, 2.0, 3.0]))
    assert percentile_from_counts(counts, EDGES, 50.0) == EDGES[0]
    assert percentile_from_counts(counts, EDGES, 99.0) == EDGES[0]


def test_percentile_interior_bucket_upper_edge():
    counts = bucket_values(EDGES, np.full(100, 50.0))  # all in [10, 100)
    assert percentile_from_counts(counts, EDGES, 50.0) == 100.0


def test_percentile_overflow_clamps_to_last_edge():
    counts = bucket_values(EDGES, np.full(10, 5000.0))  # all >= edges[-1]
    assert percentile_from_counts(counts, EDGES, 99.0) == EDGES[-1]


def test_percentile_split_population():
    # 90 cheap values, 10 expensive ones: p50 in the cheap bucket, p99 in
    # the expensive one.
    values = np.concatenate([np.full(90, 50.0), np.full(10, 500.0)])
    counts = bucket_values(EDGES, values)
    assert percentile_from_counts(counts, EDGES, 50.0) == 100.0
    assert percentile_from_counts(counts, EDGES, 99.0) == 1000.0


def test_stats_histogram_percentile_delegates_to_shared_helper():
    from repro.sim.stats import LATENCY_BIN_EDGES, histogram_percentile, latency_histogram

    values = np.array([10.0, 20.0, 30.0])  # all below LATENCY_BIN_EDGES[0]
    hist = latency_histogram(values)
    assert histogram_percentile(hist, 50.0) == LATENCY_BIN_EDGES[0]
    assert histogram_percentile(hist, 50.0) == percentile_from_counts(
        hist, LATENCY_BIN_EDGES, 50.0
    )


# ----------------------------------------------------------------------
# Histogram
# ----------------------------------------------------------------------
def test_observe_matches_observe_array():
    a = Histogram(EDGES)
    b = Histogram(EDGES)
    values = np.array([1.0, 10.0, 55.0, 150.0, 2000.0])
    for v in values:
        a.observe(v)
    b.observe_array(values)
    assert a.counts.tolist() == b.counts.tolist()
    assert a.total == b.total == 5
    assert a.sum == pytest.approx(b.sum) == pytest.approx(values.sum())


def test_mean_is_exact_not_bucketed():
    h = Histogram(EDGES)
    h.observe(7.0)
    h.observe(13.0)
    assert h.mean == pytest.approx(10.0)


def test_empty_mean_and_percentile():
    h = Histogram(EDGES)
    assert h.mean == 0.0
    assert h.percentile(50.0) == 0.0
    assert len(h) == 0
    assert bool(h)  # an empty histogram is still truthy


def test_merge_accumulates():
    a = Histogram(EDGES)
    b = Histogram(EDGES)
    a.observe(5.0)
    b.observe(500.0, n=3)
    a.merge(b)
    assert a.total == 4
    assert a.sum == pytest.approx(5.0 + 3 * 500.0)
    assert a.counts.tolist() == [1, 0, 3, 0]


def test_merge_rejects_different_edges():
    with pytest.raises(ValueError):
        Histogram(EDGES).merge(Histogram([1.0, 2.0]))


def test_geometric_constructor():
    h = Histogram.geometric(100.0, 10_000.0, 3, name="g")
    assert h.edges.tolist() == pytest.approx([100.0, 1000.0, 10_000.0])
    assert h.name == "g"


def test_constructor_validation():
    with pytest.raises(ValueError):
        Histogram([])
    with pytest.raises(ValueError):
        Histogram([10.0, 10.0])
    with pytest.raises(ValueError):
        Histogram(EDGES, counts=np.zeros(2, dtype=np.int64))


def test_summary_keys():
    h = Histogram(EDGES)
    h.observe(50.0)
    s = h.summary()
    assert set(s) == {"count", "sum", "mean", "p50", "p95", "p99"}
    assert s["count"] == 1.0
    assert s["p50"] == 100.0
