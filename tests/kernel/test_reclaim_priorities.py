"""kswapd scan-priority escalation (the graded second-chance policy)."""

import numpy as np

from repro.mem.frame import FrameFlags
from repro.mem.tiers import FAST_TIER
from repro.policies import make_policy

from ..conftest import make_machine


def build_full_fast(machine, touch_all=False):
    """Map the whole fast tier; optionally set every PTE accessed bit."""
    space = machine.create_space()
    vma = space.mmap(machine.tiers.fast.nr_pages)
    machine.populate(space, vma.vpns(), FAST_TIER)
    if touch_all:
        vpns = np.asarray(list(vma.vpns()))
        machine.access.run_chunk(
            space,
            machine.cpus.get("app0"),
            vpns,
            np.zeros(len(vpns), dtype=bool),
        )
    return space, vma


def test_priority0_spares_accessed_pages_entirely():
    m = make_machine()
    m.set_policy(make_policy("tpp", m))
    space, vma = build_full_fast(m, touch_all=True)
    kswapd = m.kswapd[FAST_TIER]
    freed, _, _ = kswapd._reclaim_pass(16, priority=0)
    assert freed == 0


def test_priority0_clears_accessed_bits_for_aging():
    m = make_machine()
    m.set_policy(make_policy("tpp", m))
    space, vma = build_full_fast(m, touch_all=True)
    kswapd = m.kswapd[FAST_TIER]
    kswapd._reclaim_pass(16, priority=0)
    pt = space.page_table
    head = list(vma.vpns())[:8]
    # The scanned batch got its accessed bits cleared (second chance).
    cleared = sum(1 for v in head if not pt.is_accessed(v))
    assert cleared > 0


def test_priority1_demotes_accessed_but_unreferenced():
    m = make_machine()
    m.set_policy(make_policy("tpp", m))
    space, vma = build_full_fast(m, touch_all=True)
    kswapd = m.kswapd[FAST_TIER]
    freed, _, _ = kswapd._reclaim_pass(8, priority=1)
    assert freed > 0


def test_priority1_spares_referenced_frames():
    m = make_machine()
    m.set_policy(make_policy("tpp", m))
    space, vma = build_full_fast(m, touch_all=True)
    # Mark the whole inactive head batch referenced (struct-page flag).
    batch = m.lru.inactive_head_batch(FAST_TIER, 32)
    for frame in batch:
        frame.set_flag(FrameFlags.REFERENCED)
    kswapd = m.kswapd[FAST_TIER]
    freed, _, _ = kswapd._reclaim_pass(8, priority=1)
    assert freed == 0


def test_priority2_demotes_anything_inactive():
    m = make_machine()
    m.set_policy(make_policy("tpp", m))
    space, vma = build_full_fast(m, touch_all=True)
    for frame in m.lru.inactive_head_batch(FAST_TIER, 32):
        frame.set_flag(FrameFlags.REFERENCED)
    kswapd = m.kswapd[FAST_TIER]
    freed, _, _ = kswapd._reclaim_pass(8, priority=2)
    assert freed > 0


def test_reclaim_pass_skips_locked_frames():
    m = make_machine()
    m.set_policy(make_policy("tpp", m))
    space, vma = build_full_fast(m)
    for frame in m.lru.inactive_head_batch(FAST_TIER, 32):
        frame.set_flag(FrameFlags.LOCKED)
    kswapd = m.kswapd[FAST_TIER]
    freed, _, _ = kswapd._reclaim_pass(8, priority=2)
    assert freed == 0
    for frame in m.lru.inactive_head_batch(FAST_TIER, 32):
        frame.clear_flag(FrameFlags.LOCKED)


def test_reclaim_pass_drains_pagevec_first():
    m = make_machine()
    m.set_policy(make_policy("tpp", m))
    space, vma = build_full_fast(m)
    # Queue an activation request without filling the pagevec.
    frame = m.lru.inactive_head_batch(FAST_TIER, 1)[0]
    m.lru.mark_accessed(frame)
    m.lru.mark_accessed(frame)
    assert m.lru.pagevec_occupancy() == 1
    m.kswapd[FAST_TIER]._reclaim_pass(1, priority=0)
    assert m.lru.pagevec_occupancy() == 0
    assert frame.active
