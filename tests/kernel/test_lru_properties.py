"""Model-based property test for the LRU manager.

The model: two ordered lists per node plus the referenced/active bits,
with the 15-entry pagevec applied exactly as Linux does. Any operation
sequence must keep the real structure and the model in lockstep.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.lru import PAGEVEC_SIZE, LruManager
from repro.mem.tiers import TieredMemory
from repro.mmu.address_space import AddressSpace

N_FRAMES = 12

ops = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove", "access", "deactivate", "rotate", "drain"]),
        st.integers(min_value=0, max_value=N_FRAMES - 1),
    ),
    max_size=120,
)


class Model:
    """Reference implementation with plain Python lists."""

    def __init__(self):
        self.inactive = []
        self.active = []
        self.referenced = set()
        self.pagevec = []

    def on_lru(self, f):
        return f in self.inactive or f in self.active

    def add(self, f):
        self.inactive.append(f)

    def remove(self, f):
        if f in self.inactive:
            self.inactive.remove(f)
        else:
            self.active.remove(f)

    def access(self, f):
        if f not in self.referenced:
            self.referenced.add(f)
            return
        if f in self.active:
            return
        self.pagevec.append(f)
        if len(self.pagevec) >= PAGEVEC_SIZE:
            self.drain()

    def drain(self):
        for f in self.pagevec:
            if f in self.inactive:
                self.inactive.remove(f)
                self.active.append(f)
                self.referenced.discard(f)
        self.pagevec.clear()

    def deactivate(self, f):
        if f in self.active:
            self.active.remove(f)
            self.referenced.discard(f)
            self.inactive.append(f)

    def rotate(self, f):
        lst = self.active if f in self.active else self.inactive
        lst.remove(f)
        lst.append(f)


@settings(max_examples=60, deadline=None)
@given(ops)
def test_lru_matches_model(operations):
    tiers = TieredMemory(N_FRAMES + 2, 4)
    lru = LruManager(tiers)
    space = AddressSpace(N_FRAMES)
    frames = []
    for i in range(N_FRAMES):
        frame = tiers.alloc_on(0)
        frame.add_rmap(space, i)
        frames.append(frame)
    model = Model()

    for op, idx in operations:
        frame = frames[idx]
        if op == "add":
            if not model.on_lru(idx):
                lru.add_new_page(frame)
                model.add(idx)
        elif op == "remove":
            if model.on_lru(idx):
                lru.remove(frame)
                model.remove(idx)
                # Removal does not clear temperature bits in either
                # implementation; keep referenced state as-is.
        elif op == "access":
            if model.on_lru(idx):
                lru.mark_accessed(frame)
                model.access(idx)
        elif op == "deactivate":
            if model.on_lru(idx):
                lru.deactivate(frame)
                model.deactivate(idx)
        elif op == "rotate":
            if model.on_lru(idx):
                lru.rotate(frame)
                model.rotate(idx)
        else:  # drain
            lru.drain_pagevec()
            model.drain()

        # Continuous equivalence of list orders and flags.
        got_inactive = [frames.index(f) for f in lru.inactive[0]]
        got_active = [frames.index(f) for f in lru.active[0]]
        assert got_inactive == model.inactive
        assert got_active == model.active
        for i, frame in enumerate(frames):
            assert frame.on_lru == model.on_lru(i)
            assert frame.active == (i in model.active)
