"""LRU lists: the mark_page_accessed protocol and pagevec batching."""

import pytest

from repro.kernel.lru import PAGEVEC_SIZE, LruManager
from repro.mem.tiers import FAST_TIER, SLOW_TIER, TieredMemory
from repro.mmu.address_space import AddressSpace


@pytest.fixture
def tiers():
    return TieredMemory(64, 64)


@pytest.fixture
def lru(tiers):
    return LruManager(tiers)


def mapped_frame(tiers, tier=FAST_TIER):
    frame = tiers.alloc_on(tier)
    frame.add_rmap(AddressSpace(16), 0)
    return frame


def test_new_pages_go_inactive(lru, tiers):
    frame = mapped_frame(tiers)
    lru.add_new_page(frame)
    assert frame.on_lru
    assert not frame.active
    assert lru.nr_inactive(FAST_TIER) == 1


def test_double_add_raises(lru, tiers):
    frame = mapped_frame(tiers)
    lru.add_new_page(frame)
    with pytest.raises(RuntimeError):
        lru.add_new_page(frame)


def test_first_access_sets_referenced_only(lru, tiers):
    frame = mapped_frame(tiers)
    lru.add_new_page(frame)
    queued = lru.mark_accessed(frame)
    assert not queued
    assert frame.referenced
    assert not frame.active


def test_second_access_queues_activation(lru, tiers):
    frame = mapped_frame(tiers)
    lru.add_new_page(frame)
    lru.mark_accessed(frame)
    queued = lru.mark_accessed(frame)
    assert queued
    # Still not active: the pagevec has not drained.
    assert not frame.active
    assert lru.pagevec_occupancy() == 1


def test_pagevec_drains_at_15(lru, tiers):
    """The Section 3.1 pathology: one hot page can need up to 15
    activation requests before the batch applies."""
    frame = mapped_frame(tiers)
    lru.add_new_page(frame)
    lru.mark_accessed(frame)  # sets referenced
    for i in range(PAGEVEC_SIZE - 1):
        lru.mark_accessed(frame)
        assert not frame.active, f"activated early at request {i + 1}"
    lru.mark_accessed(frame)  # 15th request drains the pagevec
    assert frame.active
    assert lru.nr_active(FAST_TIER) == 1
    assert lru.nr_inactive(FAST_TIER) == 0


def test_mixed_pages_fill_pagevec_faster(lru, tiers):
    frames = [mapped_frame(tiers) for _ in range(PAGEVEC_SIZE)]
    for frame in frames:
        lru.add_new_page(frame)
        lru.mark_accessed(frame)  # referenced
    for frame in frames:
        lru.mark_accessed(frame)  # one activation request each
    # The 15th request drained the vec: all became active together.
    assert all(f.active for f in frames)


def test_activation_clears_referenced(lru, tiers):
    frame = mapped_frame(tiers)
    lru.add_new_page(frame)
    lru.mark_accessed(frame)
    lru.mark_accessed(frame)
    lru.drain_pagevec()
    assert frame.active
    assert not frame.referenced


def test_accessing_active_page_is_noop(lru, tiers):
    frame = mapped_frame(tiers)
    lru.add_new_page(frame)
    lru.mark_accessed(frame)
    lru.mark_accessed(frame)
    lru.drain_pagevec()
    assert not lru.mark_accessed(frame)
    assert lru.pagevec_occupancy() == 0


def test_force_activate(lru, tiers):
    frame = mapped_frame(tiers)
    lru.add_new_page(frame)
    lru.force_activate(frame)
    assert frame.active


def test_deactivate(lru, tiers):
    frame = mapped_frame(tiers)
    lru.add_new_page(frame)
    lru.force_activate(frame)
    lru.deactivate(frame)
    assert not frame.active
    assert frame.on_lru
    assert lru.nr_inactive(FAST_TIER) == 1


def test_remove(lru, tiers):
    frame = mapped_frame(tiers)
    lru.add_new_page(frame)
    lru.remove(frame)
    assert not frame.on_lru
    assert lru.nr_inactive(FAST_TIER) == 0


def test_transfer_preserves_list_type(lru, tiers):
    old = mapped_frame(tiers, FAST_TIER)
    new = tiers.alloc_on(SLOW_TIER)
    lru.add_new_page(old)
    lru.force_activate(old)
    lru.transfer(old, new)
    assert not old.on_lru
    assert new.on_lru and new.active
    assert lru.nr_active(SLOW_TIER) == 1


def test_inactive_head_batch_is_fifo(lru, tiers):
    frames = [mapped_frame(tiers) for _ in range(5)]
    for frame in frames:
        lru.add_new_page(frame)
    batch = lru.inactive_head_batch(FAST_TIER, 3)
    assert batch == frames[:3]


def test_rotate_moves_to_tail(lru, tiers):
    frames = [mapped_frame(tiers) for _ in range(3)]
    for frame in frames:
        lru.add_new_page(frame)
    lru.rotate(frames[0])
    batch = lru.inactive_head_batch(FAST_TIER, 3)
    assert batch == [frames[1], frames[2], frames[0]]


def test_drain_skips_unmapped_or_freed(lru, tiers):
    frame = mapped_frame(tiers)
    lru.add_new_page(frame)
    lru.mark_accessed(frame)
    lru.mark_accessed(frame)
    frame.rmap.clear()  # simulate concurrent unmap
    activated = lru.drain_pagevec()
    assert activated == 0
    assert not frame.active
