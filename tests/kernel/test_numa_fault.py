"""NUMA-hint scanner: prot_none arming of slow-tier pages."""

import numpy as np

from repro.kernel.numa_fault import NumaHintScanner
from repro.mem.tiers import FAST_TIER, SLOW_TIER
from repro.mmu.pte import PTE_PROT_NONE

from ..conftest import make_machine


def build(machine, fast_pages=8, slow_pages=8):
    space = machine.create_space()
    vma = space.mmap(fast_pages + slow_pages)
    vpns = list(vma.vpns())
    machine.populate(space, vpns[:fast_pages], FAST_TIER)
    machine.populate(space, vpns[fast_pages:], SLOW_TIER)
    return space, vpns


def test_scanner_arms_only_slow_tier_pages():
    m = make_machine()
    space, vpns = build(m)
    scanner = NumaHintScanner(m, scan_period=1000.0, pages_per_scan=64)
    scanner.start()
    m.engine.run(until=10_000)
    pt = space.page_table
    flags = pt.flags[np.asarray(vpns)]
    fast_armed = flags[:8] & PTE_PROT_NONE
    slow_armed = flags[8:] & PTE_PROT_NONE
    assert not fast_armed.any()
    assert slow_armed.all()


def test_scanner_skips_already_armed():
    m = make_machine()
    space, vpns = build(m)
    scanner = NumaHintScanner(m, scan_period=1000.0, pages_per_scan=64)
    scanner.start()
    m.engine.run(until=10_000)
    armed_once = m.stats.get("numa.pages_armed")
    m.engine.run(until=50_000)
    assert m.stats.get("numa.pages_armed") == armed_once


def test_scanner_charges_task_cpu():
    m = make_machine()
    build(m)
    scanner = NumaHintScanner(
        m, scan_period=1000.0, pages_per_scan=64, task_cpu_name="app0"
    )
    scanner.start()
    m.engine.run(until=5_000)
    cpu = m.cpus.get("app0")
    assert cpu.pending_stall > 0
    assert m.stats.breakdown("app0").get("numa_scan", 0) > 0


def test_scanner_cursor_covers_large_spaces():
    m = make_machine(slow_gb=4.0)
    space = m.create_space()
    vma = space.mmap(600)
    m.populate(space, vma.vpns(), SLOW_TIER)
    scanner = NumaHintScanner(m, scan_period=1000.0, pages_per_scan=64)
    scanner.start()
    # Enough periods for the windowed cursor to sweep all 600 pages.
    m.engine.run(until=40_000)
    pt = space.page_table
    armed = (pt.flags[np.asarray(list(vma.vpns()))] & PTE_PROT_NONE) != 0
    assert armed.all()


def test_rearming_after_fault_clears():
    m = make_machine()
    space, vpns = build(m)
    scanner = NumaHintScanner(m, scan_period=1000.0, pages_per_scan=64)
    scanner.start()
    m.engine.run(until=10_000)
    pt = space.page_table
    target = vpns[8]
    pt.clear_flags(target, PTE_PROT_NONE)  # as a hint fault would
    # The cursor must sweep the whole (sparse) address space once more
    # before it revisits the target page.
    m.engine.run(until=400_000)
    assert pt.is_prot_none(target)


def test_adaptive_scanner_backs_off_when_unproductive():
    """No faults at all: the period climbs toward its maximum."""
    m = make_machine()
    space, vpns = build(m)
    scanner = NumaHintScanner(
        m, scan_period=1000.0, pages_per_scan=64, adaptive=True,
        period_min=500.0, period_max=8000.0,
    )
    scanner.start()
    m.engine.run(until=100_000)
    assert scanner.scan_period == 8000.0


def test_adaptive_scanner_speeds_up_when_productive():
    m = make_machine()
    build(m)
    scanner = NumaHintScanner(
        m, scan_period=4000.0, pages_per_scan=64, adaptive=True,
        period_min=500.0, period_max=8000.0,
    )

    def feeder():
        # Simulate productive hint faults: every fault promotes.
        while True:
            m.stats.bump("fault.hint", 10)
            m.stats.bump("migrate.promotions", 8)
            yield 2000.0

    m.engine.spawn(feeder(), "feeder")
    scanner.start()
    m.engine.run(until=60_000)
    # Productive faults pull the period down (it may oscillate once it
    # outpaces the fault source, but stays below the starting period).
    assert scanner.scan_period < 4000.0


def test_adaptive_scanner_period_stays_bounded():
    m = make_machine()
    build(m)
    scanner = NumaHintScanner(
        m, scan_period=1000.0, adaptive=True, period_min=800.0, period_max=2000.0,
    )
    scanner.start()
    m.engine.run(until=50_000)
    assert 800.0 <= scanner.scan_period <= 2000.0


def test_non_adaptive_period_is_constant():
    m = make_machine()
    build(m)
    scanner = NumaHintScanner(m, scan_period=1234.0, pages_per_scan=64)
    scanner.start()
    m.engine.run(until=50_000)
    assert scanner.scan_period == 1234.0
