"""Synchronous migration: the unmap-copy-remap pipeline."""

import pytest

from repro.kernel.migrate import MAX_RETRIES, sync_migrate_page
from repro.mem.frame import FrameFlags
from repro.mem.tiers import FAST_TIER, SLOW_TIER
from repro.mmu.pte import PTE_ACCESSED, PTE_DIRTY, PTE_WRITE

from ..conftest import make_machine


def setup_page(machine, tier=SLOW_TIER, flags_extra=0):
    space = machine.create_space()
    vma = space.mmap(4)
    machine.populate(space, [vma.start], tier)
    if flags_extra:
        space.page_table.set_flags(vma.start, flags_extra)
    gpfn = int(space.page_table.gpfn[vma.start])
    return space, vma.start, machine.tiers.frame(gpfn)


def test_successful_promotion_moves_frame():
    m = make_machine()
    space, vpn, frame = setup_page(m, SLOW_TIER)
    cpu = m.cpus.get("kswapd0")
    result = sync_migrate_page(m, frame, FAST_TIER, cpu, "promotion")
    assert result.success
    new_gpfn = int(space.page_table.gpfn[vpn])
    assert m.tiers.tier_of(new_gpfn) == FAST_TIER
    assert result.new_frame.mapcount == 1
    # Old frame freed back to the slow node.
    assert m.tiers.slow.nr_free == m.tiers.slow.nr_pages


def test_migration_preserves_permissions_and_bits():
    m = make_machine()
    space, vpn, frame = setup_page(m, SLOW_TIER, PTE_ACCESSED | PTE_DIRTY)
    assert space.page_table.is_writable(vpn)
    result = sync_migrate_page(m, frame, FAST_TIER, m.cpus.get("c"), "promotion")
    assert result.success
    assert space.page_table.is_writable(vpn)
    assert space.page_table.is_accessed(vpn)
    assert space.page_table.is_dirty(vpn)


def test_migration_transfers_lru_membership():
    m = make_machine()
    space, vpn, frame = setup_page(m, SLOW_TIER)
    m.lru.force_activate(frame)
    result = sync_migrate_page(m, frame, FAST_TIER, m.cpus.get("c"), "promotion")
    assert result.new_frame.on_lru
    assert result.new_frame.active
    assert not frame.on_lru


def test_locked_page_fails_after_retries():
    m = make_machine()
    space, vpn, frame = setup_page(m)
    frame.set_flag(FrameFlags.LOCKED)
    result = sync_migrate_page(m, frame, FAST_TIER, m.cpus.get("c"), "promotion")
    assert not result.success
    assert result.reason == "busy"
    assert result.retries == MAX_RETRIES
    # Page untouched.
    assert space.page_table.is_present(vpn)


def test_unmapped_page_fails():
    m = make_machine()
    frame = m.tiers.alloc_on(SLOW_TIER)
    result = sync_migrate_page(m, frame, FAST_TIER, m.cpus.get("c"), "promotion")
    assert not result.success
    assert result.reason == "unmapped"


def test_full_destination_fails_gracefully():
    m = make_machine()
    space, vpn, frame = setup_page(m, SLOW_TIER)
    while m.tiers.fast.nr_free:
        m.tiers.alloc_on(FAST_TIER)
    result = sync_migrate_page(m, frame, FAST_TIER, m.cpus.get("c"), "promotion")
    assert not result.success
    assert result.reason == "nomem"
    assert space.page_table.is_present(vpn)
    assert not frame.locked


def test_migration_shoots_down_tlbs():
    m = make_machine()
    space, vpn, frame = setup_page(m, SLOW_TIER)
    m.tlb_directory.note_access("app0", space.asid, vpn)
    before = m.stats.get("tlb.shootdowns")
    sync_migrate_page(m, frame, FAST_TIER, m.cpus.get("c"), "promotion")
    assert m.stats.get("tlb.shootdowns") == before + 1
    assert m.tlb_directory.holders(space.asid, vpn) == set()


def test_multi_mapped_page_migrates_all_mappings():
    m = make_machine()
    space_a = m.create_space("a")
    space_b = m.create_space("b")
    vma_a = space_a.mmap(1)
    m.populate(space_a, [vma_a.start], SLOW_TIER)
    gpfn = int(space_a.page_table.gpfn[vma_a.start])
    frame = m.tiers.frame(gpfn)
    vma_b = space_b.mmap(1)
    space_b.page_table.map(vma_b.start, gpfn, PTE_WRITE)
    frame.add_rmap(space_b, vma_b.start)

    result = sync_migrate_page(m, frame, FAST_TIER, m.cpus.get("c"), "promotion")
    assert result.success
    new_gpfn = m.tiers.gpfn(result.new_frame)
    assert int(space_a.page_table.gpfn[vma_a.start]) == new_gpfn
    assert int(space_b.page_table.gpfn[vma_b.start]) == new_gpfn
    assert result.new_frame.mapcount == 2


def test_counters_updated():
    m = make_machine()
    _, _, frame = setup_page(m, SLOW_TIER)
    sync_migrate_page(m, frame, FAST_TIER, m.cpus.get("c"), "promotion")
    assert m.stats.get("migrate.promotions") == 1
    assert m.stats.get("migrate.sync_success") == 1
    _, _, frame2 = setup_page(m, FAST_TIER)
    sync_migrate_page(m, frame2, SLOW_TIER, m.cpus.get("c"), "demotion")
    assert m.stats.get("migrate.demotions") == 1


def test_cycles_accounted_to_category():
    m = make_machine()
    _, _, frame = setup_page(m, SLOW_TIER)
    cpu = m.cpus.get("worker")
    result = sync_migrate_page(m, frame, FAST_TIER, cpu, "promotion")
    assert m.stats.breakdown("worker")["promotion"] == pytest.approx(result.cycles)
    # Copy dominates: at least the raw page-copy cost is included.
    assert result.cycles > m.costs.page_copy_cycles(SLOW_TIER, FAST_TIER)
