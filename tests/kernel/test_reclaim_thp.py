"""Reclaim and stock migration at folio granularity."""

from repro.core.nomad import NomadPolicy
from repro.kernel.migrate import sync_migrate_page
from repro.mem.tiers import FAST_TIER, SLOW_TIER
from repro.policies import make_policy

from ..conftest import make_machine


def thp_machine():
    return make_machine(thp_enabled=True, thp_order=4)


def map_fast_folio(m):
    space = m.create_space()
    vma = space.mmap(m.folio_pages, thp=True)
    m.populate(space, [vma.start], FAST_TIER)
    head = m.tiers.frame(int(space.page_table.gpfn[vma.start]))
    return space, vma.start, head


def test_sync_migrate_moves_whole_folio():
    m = thp_machine()
    m.set_policy(make_policy("tpp", m))
    space, vpn, head = map_fast_folio(m)
    result = sync_migrate_page(
        m, head, SLOW_TIER, m.cpus.get("kswapd0"), category="demotion"
    )
    assert result.success
    pt = space.page_table
    for off in range(m.folio_pages):
        assert m.tiers.tier_of(int(pt.gpfn[vpn + off])) == SLOW_TIER
        assert pt.is_huge(vpn + off)
    assert m.tiers.fast.nr_free == m.tiers.fast.nr_pages
    assert m.stats.get("thp.folio_sync_migrations") == 1


def test_reclaim_splits_cold_folio_instead_of_demoting():
    m = thp_machine()
    policy = NomadPolicy(m)
    m.set_policy(policy)
    space, vpn, head = map_fast_folio(m)
    assert policy.wants_split(head)
    kswapd = m.kswapd[FAST_TIER]
    freed, _cycles, progressed = kswapd._reclaim_pass(
        m.folio_pages, priority=3
    )
    # The cold huge folio was split, not demoted wholesale: nothing
    # freed yet, but the pass made progress.
    assert m.stats.get("thp.folio_splits") == 1
    assert progressed
    pt = space.page_table
    assert not pt.is_huge(vpn)
    assert m.tiers.tier_of(int(pt.gpfn[vpn])) == FAST_TIER
    # A follow-up pass can now demote the split base pages one by one.
    freed2, _c, _p = kswapd._reclaim_pass(m.folio_pages, priority=3)
    assert freed2 > 0


def test_tpp_reclaim_demotes_whole_folio():
    m = thp_machine()
    m.set_policy(make_policy("tpp", m))  # stock policy: no split hook
    space, vpn, head = map_fast_folio(m)
    kswapd = m.kswapd[FAST_TIER]
    freed, _cycles, _progressed = kswapd._reclaim_pass(
        m.folio_pages, priority=3
    )
    assert freed == m.folio_pages  # one demotion event frees 16 pages
    assert m.stats.get("migrate.demotions") == 1
    pt = space.page_table
    assert m.tiers.tier_of(int(pt.gpfn[vpn])) == SLOW_TIER
    assert pt.is_huge(vpn)


def test_numa_scanner_arms_folios_at_pmd_cost():
    m = thp_machine()
    m.set_policy(make_policy("tpp", m))
    space = m.create_space()
    fp = m.folio_pages
    vma = space.mmap(fp * 2, thp=True)
    m.populate(space, [vma.start, vma.start + fp], SLOW_TIER)
    base_vma = space.mmap(4)
    m.populate(space, base_vma.vpns(), SLOW_TIER)
    m.start_numa_scanner()
    m.engine.run(until=m.config.numa_scan_period * 40)
    assert m.stats.get("numa.folios_armed") >= 2
    pt = space.page_table
    # A whole folio is armed together: its sub-pages agree.
    armed = [
        pt.is_prot_none(vma.start + off) for off in range(fp)
    ]
    assert len(set(armed)) == 1
