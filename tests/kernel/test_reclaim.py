"""kswapd: watermark-driven reclaim with policy demotion."""

from repro.mem.tiers import FAST_TIER, SLOW_TIER
from repro.policies import make_policy

from ..conftest import make_machine


def fill_fast_with_cold_pages(machine, space):
    """Map pages covering the whole fast tier (inactive, never accessed)."""
    vma = space.mmap(machine.tiers.fast.nr_pages)
    machine.populate(space, vma.vpns(), FAST_TIER)
    return vma


def test_kswapd_restores_high_watermark_with_tpp():
    m = make_machine()
    m.set_policy(make_policy("tpp", m))
    space = m.create_space()
    fill_fast_with_cold_pages(m, space)
    assert m.tiers.fast.nr_free == 0
    m.kswapd[FAST_TIER].wake()
    m.engine.run(until=50_000_000)
    assert m.tiers.fast.nr_free >= m.tiers.fast.wmark_high
    assert m.stats.get("migrate.demotions") > 0


def test_kswapd_noop_without_policy():
    m = make_machine()
    space = m.create_space()
    fill_fast_with_cold_pages(m, space)
    m.kswapd[FAST_TIER].wake()
    m.engine.run(until=10_000_000)
    assert m.tiers.fast.nr_free == 0


def test_kswapd_gives_up_when_slow_tier_full():
    m = make_machine()
    m.set_policy(make_policy("tpp", m))
    space = m.create_space()
    fill_fast_with_cold_pages(m, space)
    # Exhaust the slow tier so demotion cannot allocate.
    while m.tiers.slow.nr_free:
        m.tiers.alloc_on(SLOW_TIER)
    m.kswapd[FAST_TIER].wake()
    m.engine.run(until=30_000_000)
    assert m.stats.get("kswapd.gave_up") > 0


def test_reclaim_work_accounted_on_kswapd_cpu():
    m = make_machine()
    m.set_policy(make_policy("tpp", m))
    space = m.create_space()
    fill_fast_with_cold_pages(m, space)
    m.kswapd[FAST_TIER].wake()
    m.engine.run(until=50_000_000)
    breakdown = m.stats.breakdown("kswapd0")
    assert breakdown.get("reclaim", 0) > 0
    assert breakdown.get("demotion", 0) > 0
    # No user execution was charged to the application core (the only
    # app-core charge can be the NUMA scanner's task-context work).
    app = m.stats.breakdown("app0")
    assert set(app) <= {"numa_scan"}


def test_second_chance_protects_recently_accessed_pages():
    m = make_machine()
    m.set_policy(make_policy("tpp", m))
    space = m.create_space()
    vma = fill_fast_with_cold_pages(m, space)
    # Touch the first pages so their PTE accessed bits are set.
    import numpy as np

    hot = np.asarray(list(vma.vpns())[:8])
    m.access.run_chunk(
        space, m.cpus.get("app0"), hot, np.zeros(len(hot), dtype=bool)
    )
    m.kswapd[FAST_TIER].wake()
    m.engine.run(until=5_000_000)
    pt = space.page_table
    tiers = m.tiers
    still_fast = sum(
        1 for vpn in hot if tiers.tier_of(int(pt.gpfn[vpn])) == FAST_TIER
    )
    # The polite first passes demote cold pages, not the touched ones.
    assert still_fast == len(hot)


def test_low_watermark_allocation_wakes_kswapd():
    m = make_machine()
    m.set_policy(make_policy("tpp", m))
    space = m.create_space()
    fill_fast_with_cold_pages(m, space)
    # populate() used alloc_on which fires the hook; run the engine and
    # reclaim should happen without an explicit wake().
    m.engine.run(until=50_000_000)
    assert m.tiers.fast.nr_free > 0
