"""Every example script runs end-to-end (tiny access counts)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

# (script, extra argv) -- kept tiny so the whole file stays fast.
CASES = [
    ("quickstart.py", ["--accesses", "20000"]),
    ("memory_pressure_sweep.py", ["--accesses", "8000"]),
    ("kv_store_tiering.py", ["--accesses", "15000", "--case", "case1"]),
    ("shadow_robustness.py", ["--accesses", "15000"]),
    ("transactional_migration_anatomy.py", []),
    ("tail_latency.py", ["--accesses", "20000"]),
    ("multi_tenant_interference.py", ["--accesses", "10000"]),
    ("thread_scaling.py", ["--accesses", "10000"]),
]


def test_every_example_is_covered():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == {name for name, _ in CASES}


@pytest.mark.parametrize("script,argv", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, argv):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *argv],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"
