"""The package version is single-sourced from pyproject.toml."""

import re
from pathlib import Path

import repro

PYPROJECT = Path(__file__).resolve().parents[1] / "pyproject.toml"


def pyproject_version():
    match = re.search(
        r'^version\s*=\s*"([^"]+)"', PYPROJECT.read_text(), re.MULTILINE
    )
    assert match, "pyproject.toml lost its version field"
    return match.group(1)


def test_version_matches_pyproject():
    # The anti-drift check: there is exactly one place to bump.
    assert repro.__version__ == pyproject_version()


def test_version_is_pep440ish():
    assert re.fullmatch(r"\d+(\.\d+)*([ab]|rc)?\d*(\+\S+)?", repro.__version__)


def test_resolver_survives_missing_metadata_and_file(monkeypatch, tmp_path):
    # Neither an installed distribution nor a readable pyproject: the
    # resolver must degrade to the sentinel, never raise at import time.
    import repro as pkg

    real_resolve = pkg._resolve_version
    monkeypatch.setattr(
        Path, "read_text", lambda self, *a, **k: (_ for _ in ()).throw(OSError())
    )
    try:
        import importlib.metadata as ilm
    except ImportError:
        ilm = None
    if ilm is not None:
        monkeypatch.setattr(
            ilm,
            "version",
            lambda name: (_ for _ in ()).throw(ilm.PackageNotFoundError(name)),
        )
    assert real_resolve() == "0+unknown"
