"""Memory nodes: allocation, freeing, watermarks."""

import pytest

from repro.mem.frame import FrameFlags
from repro.mem.node import MemoryNode
from repro.mmu.address_space import AddressSpace


@pytest.fixture
def node():
    return MemoryNode(0, 100, "fast", watermark_scale=0.05)


def test_sizes(node):
    assert node.nr_pages == 100
    assert node.nr_free == 100
    assert node.nr_used == 0


def test_watermarks_scaled(node):
    assert node.wmark_min == 5
    assert node.wmark_low == 10
    assert node.wmark_high == 15


def test_alloc_until_exhaustion(node):
    frames = [node.alloc() for _ in range(100)]
    assert all(f is not None for f in frames)
    assert len({f.pfn for f in frames}) == 100
    assert node.alloc() is None
    assert node.nr_free == 0


def test_free_returns_to_pool(node):
    frame = node.alloc()
    node.free(frame)
    assert node.nr_free == 100


def test_free_wrong_node_rejected(node):
    other = MemoryNode(1, 10)
    frame = other.alloc()
    with pytest.raises(ValueError):
        node.free(frame)


def test_free_mapped_frame_rejected(node):
    frame = node.alloc()
    frame.add_rmap(AddressSpace(16), 0)
    with pytest.raises(RuntimeError):
        node.free(frame)


def test_free_locked_frame_rejected(node):
    frame = node.alloc()
    frame.set_flag(FrameFlags.LOCKED)
    with pytest.raises(RuntimeError):
        node.free(frame)


def test_free_clears_flags(node):
    frame = node.alloc()
    frame.set_flag(FrameFlags.ACTIVE | FrameFlags.REFERENCED)
    node.free(frame)
    reused = node.alloc()
    while reused.pfn != frame.pfn:
        reused = node.alloc()
    assert reused.flags == 0


def test_watermark_predicates(node):
    frames = []
    while node.nr_free > node.wmark_low:
        frames.append(node.alloc())
    assert node.below_low() is False  # exactly at low is not below
    frames.append(node.alloc())
    assert node.below_low()
    while node.nr_free >= node.wmark_min:
        frames.append(node.alloc())
    assert node.below_min()


def test_reclaim_target(node):
    for _ in range(95):
        node.alloc()
    # free = 5, high = 15 -> need 10
    assert node.reclaim_target() == 10


def test_above_high(node):
    assert node.above_high()
    for _ in range(90):
        node.alloc()
    assert not node.above_high()


def test_used_frames_iteration(node):
    allocated = {node.alloc().pfn for _ in range(5)}
    used = {f.pfn for f in node.used_frames()}
    assert used == allocated


def test_invalid_size_rejected():
    with pytest.raises(ValueError):
        MemoryNode(0, 0)


def test_alloc_resets_generation_tracking(node):
    frame = node.alloc()
    gen = frame.generation
    node.free(frame)
    again = node.alloc()
    while again.pfn != frame.pfn:
        again = node.alloc()
    assert again.generation == gen + 1
