"""Property-style XArray test: random operation sequences vs a model.

The model is the obvious thing the radix tree is optimizing: a dict for
the entries plus one set per mark. After every operation the tree must
agree with the model on loads, membership, mark state, and both
iteration orders. A mismatch prints the seed so the failing sequence
replays exactly.
"""

import numpy as np
import pytest

from repro.mem.xarray import XA_MARK_0, XA_MARK_1, XA_MARK_2, XArray

MARKS = (XA_MARK_0, XA_MARK_1, XA_MARK_2)

# Indices cluster in a few ranges so sequences revisit nodes (stores
# over stores, erases that prune shared interior nodes) instead of
# scattering one entry per leaf.
RANGES = ((0, 64), (4000, 4100), (260_000, 260_050))


def random_index(rng):
    lo, hi = RANGES[int(rng.integers(len(RANGES)))]
    return int(rng.integers(lo, hi))


def apply_random_op(rng, xa, model, marks):
    op = rng.random()
    index = random_index(rng)
    if op < 0.45:  # store (possibly overwriting; marks survive)
        value = int(rng.integers(1_000_000))
        assert xa.store(index, value) == model.get(index)
        model[index] = value
    elif op < 0.70:  # erase (possibly absent)
        assert xa.erase(index) == model.pop(index, None)
        for mark in MARKS:
            marks[mark].discard(index)
    elif op < 0.85:  # set a mark (raises on absent index)
        mark = MARKS[int(rng.integers(len(MARKS)))]
        if index in model:
            xa.set_mark(index, mark)
            marks[mark].add(index)
        else:
            with pytest.raises(KeyError):
                xa.set_mark(index, mark)
    else:  # clear a mark (absent index is a no-op)
        mark = MARKS[int(rng.integers(len(MARKS)))]
        xa.clear_mark(index, mark)
        marks[mark].discard(index)


def check_agreement(xa, model, marks):
    assert len(xa) == len(model)
    items = list(xa.items())
    assert items == sorted(model.items())  # ascending index order
    for index, value in items:
        assert index in xa
        assert xa.load(index) == value
    for mark in MARKS:
        marked = list(xa.marked_items(mark))
        assert marked == sorted((i, model[i]) for i in marks[mark])
        first = xa.first_marked(mark)
        assert first == (marked[0] if marked else None)
        for index, _ in items:
            assert xa.get_mark(index, mark) == (index in marks[mark])


@pytest.mark.parametrize("seed", range(8))
def test_random_sequences_match_the_model(seed):
    rng = np.random.default_rng(seed)
    xa = XArray()
    model = {}
    marks = {mark: set() for mark in MARKS}
    for step in range(400):
        apply_random_op(rng, xa, model, marks)
        if step % 25 == 0:
            check_agreement(xa, model, marks)
    check_agreement(xa, model, marks)


def test_dense_fill_then_marked_drain():
    # The shadow index's reclaim pattern: fill, mark everything
    # reclaimable, drain via first_marked like a reclaim loop.
    xa = XArray()
    for i in range(300):
        xa.store(i * 7, i)
        xa.set_mark(i * 7, XA_MARK_0)
    drained = []
    while True:
        found = xa.first_marked(XA_MARK_0)
        if found is None:
            break
        index, value = found
        drained.append(value)
        xa.erase(index)
    assert drained == list(range(300))
    assert len(xa) == 0
