"""Frame flags and reverse mappings."""

import pytest

from repro.mem.frame import Frame, FrameFlags
from repro.mmu.address_space import AddressSpace


@pytest.fixture
def frame():
    return Frame(pfn=7, node_id=0)


@pytest.fixture
def space():
    return AddressSpace(64, "t")


def test_initial_state(frame):
    assert frame.flags == 0
    assert not frame.mapped
    assert frame.mapcount == 0
    assert frame.generation == 0


def test_flag_set_clear_test(frame):
    frame.set_flag(FrameFlags.ACTIVE)
    assert frame.active
    frame.set_flag(FrameFlags.REFERENCED)
    assert frame.referenced and frame.active
    frame.clear_flag(FrameFlags.ACTIVE)
    assert not frame.active and frame.referenced


def test_named_flag_properties(frame):
    for flag, prop in [
        (FrameFlags.LOCKED, "locked"),
        (FrameFlags.LRU, "on_lru"),
        (FrameFlags.SHADOWED, "shadowed"),
        (FrameFlags.IS_SHADOW, "is_shadow"),
    ]:
        frame.set_flag(flag)
        assert getattr(frame, prop)
        frame.clear_flag(flag)
        assert not getattr(frame, prop)


def test_rmap_add_remove(frame, space):
    frame.add_rmap(space, 3)
    assert frame.mapped
    assert frame.mapcount == 1
    assert frame.sole_mapping() == (space, 3)
    frame.remove_rmap(space, 3)
    assert not frame.mapped


def test_rmap_remove_missing_raises(frame, space):
    with pytest.raises(RuntimeError):
        frame.remove_rmap(space, 3)


def test_sole_mapping_none_for_multi(frame, space):
    other = AddressSpace(64, "o")
    frame.add_rmap(space, 1)
    frame.add_rmap(other, 2)
    assert frame.mapcount == 2
    assert frame.sole_mapping() is None


def test_reset_bumps_generation(frame):
    frame.set_flag(FrameFlags.ACTIVE)
    gen = frame.generation
    frame.reset()
    assert frame.flags == 0
    assert frame.generation == gen + 1


def test_reset_with_live_rmap_raises(frame, space):
    frame.add_rmap(space, 0)
    with pytest.raises(RuntimeError):
        frame.reset()
