"""Tier topology: chain validation, chain-walk allocation, aliases."""

import pytest

from repro.mem.tiers import FAST_TIER, SLOW_TIER, TieredMemory
from repro.mem.topology import TierSpec, TierTopology


def spec(name, gb=0.25, lat=300.0, rd=12.0, wr=20.0):
    return TierSpec(name, gb, lat, rd, wr)


def three_chain():
    """A tiny DRAM/CXL/SSD-style chain: 64 pages per 0.25 GB tier."""
    return TierTopology(
        (
            spec("dram", lat=300.0),
            spec("cxl", lat=900.0, rd=4.0),
            spec("ssd", gb=1.0, lat=4500.0, rd=1.5, wr=1.0),
        )
    )


# ----------------------------------------------------------------------
# TierSpec / TierTopology validation
# ----------------------------------------------------------------------
def test_tier_spec_rejects_bad_figures():
    with pytest.raises(ValueError):
        spec("")
    with pytest.raises(ValueError):
        spec("t", gb=0.0)
    with pytest.raises(ValueError):
        spec("t", lat=-1.0)
    with pytest.raises(ValueError):
        spec("t", rd=0.0)
    with pytest.raises(ValueError):
        spec("t", wr=0.0)


def test_tier_spec_pages_uses_simulation_scale():
    from repro.sim.platform import gb_to_pages

    assert spec("t", gb=0.25).pages == gb_to_pages(0.25)
    assert spec("t", gb=1.0).pages == 4 * spec("t", gb=0.25).pages


def test_topology_needs_at_least_two_tiers():
    with pytest.raises(ValueError):
        TierTopology((spec("only"),))


def test_topology_rejects_duplicate_names():
    with pytest.raises(ValueError):
        TierTopology((spec("a"), spec("a", lat=900.0)))


def test_topology_rejects_latency_inversion():
    # A "slower" tier with lower load-to-use latency is a mis-ordered chain.
    with pytest.raises(ValueError):
        TierTopology((spec("a", lat=900.0), spec("b", lat=300.0)))


def test_topology_targets_walk_one_step():
    topo = three_chain()
    assert topo.nr_tiers == 3
    assert topo.bottom_tier == 2
    assert topo.promotion_target(0) is None
    assert topo.promotion_target(1) == 0
    assert topo.promotion_target(2) == 1
    assert topo.demotion_target(0) == 1
    assert topo.demotion_target(1) == 2
    assert topo.demotion_target(2) is None
    with pytest.raises(IndexError):
        topo.demotion_target(3)
    with pytest.raises(IndexError):
        topo.promotion_target(-1)


def test_topology_cost_vectors_are_per_tier():
    topo = three_chain()
    assert topo.read_latencies == (300.0, 900.0, 4500.0)
    assert topo.read_bandwidths == (12.0, 4.0, 1.5)
    assert topo.write_bandwidths == (20.0, 20.0, 1.0)


# ----------------------------------------------------------------------
# TieredMemory on a chain
# ----------------------------------------------------------------------
def test_deprecated_aliases_name_the_chain_ends():
    assert FAST_TIER == 0
    assert SLOW_TIER == 1


def test_two_tier_alloc_order_matches_historical_flip():
    tiers = TieredMemory(fast_pages=8, slow_pages=8)
    assert tiers.alloc_order(FAST_TIER) == (0, 1)
    assert tiers.alloc_order(SLOW_TIER) == (1, 0)


def test_three_tier_alloc_order_walks_down_then_up():
    tiers = TieredMemory(topology=three_chain())
    assert tiers.nr_tiers == 3
    assert tiers.bottom_tier == 2
    assert tiers.alloc_order(0) == (0, 1, 2)
    assert tiers.alloc_order(1) == (1, 2, 0)
    assert tiers.alloc_order(2) == (2, 1, 0)


def test_three_tier_gpfn_addressing_is_cumulative():
    tiers = TieredMemory(topology=three_chain())
    sizes = [node.nr_pages for node in tiers.nodes]
    assert tiers.total_pages == sum(sizes)
    mid = tiers.alloc_on(1)
    bot = tiers.alloc_on(2)
    assert tiers.gpfn(mid) >= sizes[0]
    assert tiers.gpfn(bot) >= sizes[0] + sizes[1]
    assert tiers.tier_of(tiers.gpfn(mid)) == 1
    assert tiers.tier_of(tiers.gpfn(bot)) == 2
    assert tiers.frame(tiers.gpfn(bot)) is bot


def test_alloc_page_spills_down_the_whole_chain():
    tiers = TieredMemory(topology=three_chain())
    while tiers.nodes[0].nr_free:
        tiers.alloc_on(0)
    while tiers.nodes[1].nr_free:
        tiers.alloc_on(1)
    frame = tiers.alloc_page()
    assert frame.node_id == 2


def test_alloc_page_falls_back_up_from_the_bottom():
    tiers = TieredMemory(topology=three_chain())
    while tiers.nodes[2].nr_free:
        tiers.alloc_on(2)
    while tiers.nodes[1].nr_free:
        tiers.alloc_on(1)
    frame = tiers.alloc_page(preferred=2)
    assert frame.node_id == 0


def test_tiered_memory_demands_sizes_or_topology():
    with pytest.raises(ValueError):
        TieredMemory(fast_pages=8)


def test_usage_reports_per_tier_keys_only_on_deep_chains():
    two = TieredMemory(fast_pages=8, slow_pages=8)
    assert "tier2_used" not in two.usage()
    three = TieredMemory(topology=three_chain())
    three.alloc_on(2)
    usage = three.usage()
    # Legacy keys stay for the paper's fast/slow pair...
    assert usage["fast_used"] == 0
    assert usage["slow_used"] == 0
    # ...and the chain view names every tier.
    assert usage["tier0_used"] == 0
    assert usage["tier2_used"] == 1
    assert usage["tier2_free"] == three.nodes[2].nr_pages - 1
