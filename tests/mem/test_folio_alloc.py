"""Folio (compound page) allocation: contiguity, alignment, recycling."""

import pytest

from repro.mem.frame import compound_head
from repro.mem.node import MemoryNode


@pytest.fixture
def node():
    return MemoryNode(0, 64, "fast")


def test_folio_is_contiguous_and_aligned(node):
    head = node.alloc_folio(3)
    assert head is not None
    assert head.order == 3
    assert head.nr_pages == 8
    assert head.pfn % 8 == 0
    for off in range(1, 8):
        tail = node.frames[head.pfn + off]
        assert tail.is_tail
        assert tail.head is head
        assert compound_head(tail) is head


def test_order_zero_goes_through_plain_alloc(node):
    a = node.alloc()
    b = node.alloc_folio(0)
    # Same FIFO: folio order 0 is exactly the historical allocator.
    assert b.pfn == a.pfn + 1
    assert b.order == 0 and not b.is_tail


def test_folio_alloc_skips_partially_used_blocks(node):
    first = node.alloc()  # takes pfn 0, breaking block [0, 8)
    head = node.alloc_folio(3)
    assert head.pfn == 8
    assert first.pfn == 0


def test_fragmentation_fails_folio_but_not_base(node):
    # Occupy one page in every naturally aligned 8-page block.
    held = []
    for base in range(0, 64, 8):
        while True:
            f = node.alloc()
            if f.pfn == base:
                held.append(f)
                break
            held.append(f)
    # Enough free pages overall, but no aligned free run.
    for f in held:
        if f.pfn % 8 != 0:
            node.free(f)
    assert node.nr_free == 64 - 8
    assert node.alloc_folio(3) is None
    assert node.alloc() is not None


def test_free_folio_returns_every_subpage(node):
    head = node.alloc_folio(3)
    node.free_folio(head)
    assert node.nr_free == 64
    assert head.order == 0
    assert all(f.head is None for f in node.frames)
    # The whole block is allocatable again.
    assert node.alloc_folio(3) is not None


def test_freeing_compound_page_pagewise_is_rejected(node):
    head = node.alloc_folio(2)
    with pytest.raises(RuntimeError):
        node.free(head)
    with pytest.raises(ValueError):
        node.free_folio(node.frames[head.pfn + 1])


def test_stale_fifo_entries_skipped_after_folio_takes_them(node):
    # Drain and refill the FIFO so folio pages sit in the middle of it.
    frames = [node.alloc() for _ in range(64)]
    for f in frames:
        node.free(f)
    head = node.alloc_folio(3)
    taken = set(range(head.pfn, head.pfn + 8))
    # Every remaining page is still allocatable exactly once.
    seen = set()
    while True:
        f = node.alloc()
        if f is None:
            break
        assert f.pfn not in taken
        assert f.pfn not in seen
        seen.add(f.pfn)
    assert len(seen) == 64 - 8


def test_folio_alloc_exhaustion_returns_none(node):
    heads = []
    while True:
        head = node.alloc_folio(3)
        if head is None:
            break
        heads.append(head)
    assert len(heads) == 8
    assert node.nr_free == 0
    node.free_folio(heads[0])
    assert node.alloc_folio(3) is not None
