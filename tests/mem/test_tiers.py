"""Tiered memory: global frame numbers, fallback allocation, bus events."""

import pytest

from repro.mem.node import OutOfMemoryError
from repro.mem.tiers import FAST_TIER, SLOW_TIER, TieredMemory
from repro.sim.bus import AllocFail, LowWatermark


@pytest.fixture
def tiers():
    return TieredMemory(fast_pages=50, slow_pages=70)


def test_layout(tiers):
    assert tiers.fast.nr_pages == 50
    assert tiers.slow.nr_pages == 70
    assert tiers.total_pages == 120
    assert tiers.total_free == 120


def test_gpfn_roundtrip(tiers):
    fast = tiers.alloc_on(FAST_TIER)
    slow = tiers.alloc_on(SLOW_TIER)
    assert tiers.tier_of(tiers.gpfn(fast)) == FAST_TIER
    assert tiers.tier_of(tiers.gpfn(slow)) == SLOW_TIER
    assert tiers.frame(tiers.gpfn(fast)) is fast
    assert tiers.frame(tiers.gpfn(slow)) is slow
    # Slow gpfns are offset past the fast node.
    assert tiers.gpfn(slow) >= 50


def test_gpfn_bounds(tiers):
    with pytest.raises(IndexError):
        tiers.frame(-1)
    with pytest.raises(IndexError):
        tiers.frame(120)


def test_alloc_page_prefers_fast(tiers):
    frame = tiers.alloc_page()
    assert frame.node_id == FAST_TIER


def test_alloc_page_falls_back_to_slow(tiers):
    while tiers.fast.nr_free:
        tiers.alloc_on(FAST_TIER)
    frame = tiers.alloc_page(FAST_TIER)
    assert frame.node_id == SLOW_TIER


def test_alloc_page_slow_preference_falls_back_to_fast(tiers):
    while tiers.slow.nr_free:
        tiers.alloc_on(SLOW_TIER)
    frame = tiers.alloc_page(SLOW_TIER)
    assert frame.node_id == FAST_TIER


def test_oom_when_everything_full(tiers):
    while tiers.total_free:
        tiers.alloc_page()
    with pytest.raises(OutOfMemoryError):
        tiers.alloc_page()


def test_low_watermark_event_published(tiers):
    woken = []
    tiers.bus.subscribe(LowWatermark, lambda e: woken.append(e.tier))
    while tiers.fast.nr_free > tiers.fast.wmark_low - 1:
        tiers.alloc_on(FAST_TIER)
    assert FAST_TIER in woken


def test_alloc_fail_subscriber_enables_recovery(tiers):
    stash = []
    while tiers.total_free:
        stash.append(tiers.alloc_page())

    def reclaim(event):
        for _ in range(min(event.nr * 2, len(stash))):
            tiers.free_page(stash.pop())
            event.freed += 1

    tiers.bus.subscribe(AllocFail, reclaim)
    frame = tiers.alloc_page()
    assert frame is not None


def test_alloc_fail_subscriber_freeing_nothing_ooms(tiers):
    while tiers.total_free:
        tiers.alloc_page()
    tiers.bus.subscribe(AllocFail, lambda event: None)
    with pytest.raises(OutOfMemoryError):
        tiers.alloc_page()


def test_free_page_roundtrip(tiers):
    frame = tiers.alloc_on(SLOW_TIER)
    tiers.free_page(frame)
    assert tiers.slow.nr_free == 70


def test_usage_snapshot(tiers):
    tiers.alloc_on(FAST_TIER)
    tiers.alloc_on(SLOW_TIER)
    usage = tiers.usage()
    assert usage["fast_used"] == 1
    assert usage["slow_used"] == 1
    assert usage["fast_free"] == 49


def test_tier_of_gpfn_array(tiers):
    assert tiers.tier_of_gpfn[:50].sum() == 0
    assert (tiers.tier_of_gpfn[50:] == 1).all()
