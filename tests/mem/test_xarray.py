"""XArray: radix-tree store, marks, iteration -- plus a model-based
property test against a plain dict."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.xarray import XA_MARK_0, XA_MARK_1, XArray


def test_empty():
    xa = XArray()
    assert len(xa) == 0
    assert xa.load(0) is None
    assert 5 not in xa


def test_store_load_roundtrip():
    xa = XArray()
    assert xa.store(10, "a") is None
    assert xa.load(10) == "a"
    assert 10 in xa
    assert len(xa) == 1


def test_store_overwrites_and_returns_old():
    xa = XArray()
    xa.store(3, "old")
    assert xa.store(3, "new") == "old"
    assert xa.load(3) == "new"
    assert len(xa) == 1


def test_store_none_erases():
    xa = XArray()
    xa.store(3, "x")
    assert xa.store(3, None) == "x"
    assert len(xa) == 0


def test_erase_returns_entry():
    xa = XArray()
    xa.store(99, "v")
    assert xa.erase(99) == "v"
    assert xa.erase(99) is None
    assert len(xa) == 0


def test_large_indices_grow_tree():
    xa = XArray()
    xa.store(0, "zero")
    xa.store(1 << 30, "big")
    xa.store(12345678, "mid")
    assert xa.load(0) == "zero"
    assert xa.load(1 << 30) == "big"
    assert xa.load(12345678) == "mid"
    assert len(xa) == 3


def test_negative_index_rejected():
    xa = XArray()
    with pytest.raises(ValueError):
        xa.store(-1, "x")
    with pytest.raises(ValueError):
        xa.load(-1)


def test_items_sorted():
    xa = XArray()
    for i in (700, 3, 64, 65, 1 << 20):
        xa.store(i, i * 2)
    assert list(xa.items()) == [
        (3, 6),
        (64, 128),
        (65, 130),
        (700, 1400),
        (1 << 20, 2 << 20),
    ]


def test_marks_basic():
    xa = XArray()
    xa.store(5, "a")
    xa.store(6, "b")
    assert not xa.get_mark(5, XA_MARK_0)
    xa.set_mark(5, XA_MARK_0)
    assert xa.get_mark(5, XA_MARK_0)
    assert not xa.get_mark(6, XA_MARK_0)
    assert not xa.get_mark(5, XA_MARK_1)


def test_mark_absent_entry_raises():
    xa = XArray()
    with pytest.raises(KeyError):
        xa.set_mark(9, XA_MARK_0)


def test_clear_mark():
    xa = XArray()
    xa.store(5, "a")
    xa.set_mark(5, XA_MARK_0)
    xa.clear_mark(5, XA_MARK_0)
    assert not xa.get_mark(5, XA_MARK_0)


def test_erase_clears_marks():
    xa = XArray()
    xa.store(70, "a")
    xa.set_mark(70, XA_MARK_0)
    xa.erase(70)
    xa.store(70, "b")
    assert not xa.get_mark(70, XA_MARK_0)


def test_marked_items_and_first_marked():
    xa = XArray()
    for i in range(0, 300, 7):
        xa.store(i, i)
    for i in (7, 140, 287):
        xa.set_mark(i, XA_MARK_1)
    assert [i for i, _ in xa.marked_items(XA_MARK_1)] == [7, 140, 287]
    assert xa.first_marked(XA_MARK_1) == (7, 7)
    assert xa.first_marked(XA_MARK_0) is None


def test_mark_propagation_across_levels():
    xa = XArray()
    big = (1 << 18) + 3
    xa.store(big, "x")
    xa.store(2, "y")
    xa.set_mark(big, XA_MARK_0)
    assert xa.first_marked(XA_MARK_0) == (big, "x")
    xa.clear_mark(big, XA_MARK_0)
    assert xa.first_marked(XA_MARK_0) is None


def test_prune_empties_tree():
    xa = XArray()
    for i in range(200):
        xa.store(i * 1000, i)
    for i in range(200):
        xa.erase(i * 1000)
    assert len(xa) == 0
    assert xa._root is None
    assert list(xa.items()) == []


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["store", "erase", "mark", "unmark"]),
            st.integers(min_value=0, max_value=1 << 20),
        ),
        max_size=200,
    )
)
def test_model_based_against_dict(ops):
    """The XArray behaves exactly like a dict + mark set."""
    xa = XArray()
    model = {}
    marks = set()
    counter = 0
    for op, idx in ops:
        if op == "store":
            counter += 1
            xa.store(idx, counter)
            model[idx] = counter
        elif op == "erase":
            got = xa.erase(idx)
            expected = model.pop(idx, None)
            marks.discard(idx)
            assert got == expected
        elif op == "mark":
            if idx in model:
                xa.set_mark(idx, XA_MARK_0)
                marks.add(idx)
        else:  # unmark
            xa.clear_mark(idx, XA_MARK_0)
            marks.discard(idx)
    assert len(xa) == len(model)
    assert dict(xa.items()) == model
    assert {i for i, _ in xa.marked_items(XA_MARK_0)} == marks
