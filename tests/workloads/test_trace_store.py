"""On-disk trace store: writer, manifest, digests, streaming, importer."""

import json

import numpy as np
import pytest

from repro.workloads import (
    TRACE_SCHEMA,
    TraceManifest,
    TraceWriter,
    import_text_trace,
)


def sample_arrays(n=1000, pages=64, seed=3):
    rng = np.random.default_rng(seed)
    return rng.integers(0, pages, n), rng.random(n) < 0.4


def write_trace(out_dir, vpns, writes, **kwargs):
    writer = TraceWriter(out_dir, **kwargs)
    writer.append(vpns, writes)
    return writer.close()


def test_writer_roundtrip(tmp_path):
    vpns, writes = sample_arrays()
    manifest = write_trace(
        tmp_path / "t", vpns, writes, name="sample", fast_fraction=0.5
    )
    assert manifest.schema == TRACE_SCHEMA
    assert manifest.name == "sample"
    assert manifest.accesses == 1000
    assert manifest.fast_fraction == 0.5
    assert manifest.doc["writes"] == int(writes.sum())
    assert manifest.doc["vpn_max"] == int(vpns.max())
    loaded = TraceManifest.load(tmp_path / "t")
    assert loaded.doc == manifest.doc
    got_v, got_w = loaded.load_arrays()
    assert np.array_equal(got_v, vpns)
    assert np.array_equal(got_w, writes)


def test_load_accepts_manifest_path_or_dir(tmp_path):
    vpns, writes = sample_arrays()
    write_trace(tmp_path / "t", vpns, writes)
    by_dir = TraceManifest.load(tmp_path / "t")
    by_file = TraceManifest.load(tmp_path / "t" / "manifest.json")
    assert by_dir.doc == by_file.doc


def test_shard_layout_independent_of_append_pattern(tmp_path):
    """Same content in different append sizes gives identical shards."""
    vpns, writes = sample_arrays(n=2000)
    one = write_trace(tmp_path / "one", vpns, writes, shard_accesses=300)
    writer = TraceWriter(tmp_path / "many", shard_accesses=300)
    for lo in range(0, 2000, 7):
        writer.append(vpns[lo:lo + 7], writes[lo:lo + 7])
    many = writer.close()
    assert one.digest == many.digest
    assert [s["sha256"] for s in one.shards] == [
        s["sha256"] for s in many.shards
    ]
    assert [s["accesses"] for s in one.shards] == [
        s["accesses"] for s in many.shards
    ]
    # Every shard but the tail is exactly shard_accesses long.
    assert all(s["accesses"] == 300 for s in one.shards[:-1])


def test_iter_chunks_independent_of_shard_boundaries(tmp_path):
    vpns, writes = sample_arrays(n=1500)
    small = write_trace(tmp_path / "s", vpns, writes, shard_accesses=128)
    large = write_trace(tmp_path / "l", vpns, writes, shard_accesses=4096)
    for chunk_size in (64, 100, 1501):
        for a, b in zip(
            small.iter_chunks(chunk_size), large.iter_chunks(chunk_size)
        ):
            assert np.array_equal(a[0], b[0])
            assert np.array_equal(a[1], b[1])
        got_v = np.concatenate([v for v, _ in small.iter_chunks(chunk_size)])
        assert np.array_equal(got_v, vpns)


def test_verify_passes_fresh_and_catches_corruption(tmp_path):
    vpns, writes = sample_arrays(n=900)
    manifest = write_trace(
        tmp_path / "t", vpns, writes, shard_accesses=256
    )
    manifest.verify()
    # Corrupt one shard's content: verify must pinpoint it.
    victim = tmp_path / "t" / manifest.shards[1]["file"]
    np.savez_compressed(victim, vpns=vpns[:256] + 1, writes=writes[:256])
    with pytest.raises(ValueError, match="shard-00001.*digest mismatch"):
        TraceManifest.load(tmp_path / "t").verify()


def test_verify_catches_manifest_tampering(tmp_path):
    vpns, writes = sample_arrays()
    write_trace(tmp_path / "t", vpns, writes)
    path = tmp_path / "t" / "manifest.json"
    doc = json.loads(path.read_text())
    doc["accesses"] += 1
    path.write_text(json.dumps(doc))
    with pytest.raises(ValueError, match="accesses"):
        TraceManifest.load(tmp_path / "t").verify()


def test_load_rejects_unknown_schema(tmp_path):
    vpns, writes = sample_arrays()
    write_trace(tmp_path / "t", vpns, writes)
    path = tmp_path / "t" / "manifest.json"
    doc = json.loads(path.read_text())
    doc["schema"] = "repro-trace/99"
    path.write_text(json.dumps(doc))
    with pytest.raises(ValueError, match="repro-trace/99"):
        TraceManifest.load(tmp_path / "t")


def test_load_missing_manifest(tmp_path):
    with pytest.raises(FileNotFoundError):
        TraceManifest.load(tmp_path / "nope")


def test_writer_validation(tmp_path):
    with pytest.raises(ValueError, match="shard_accesses must be positive"):
        TraceWriter(tmp_path / "t", shard_accesses=0)
    with pytest.raises(ValueError, match=r"fast_fraction must be in \[0, 1\]"):
        TraceWriter(tmp_path / "t", fast_fraction=1.5)
    writer = TraceWriter(tmp_path / "t")
    with pytest.raises(ValueError, match="equal length"):
        writer.append(np.array([1, 2]), np.array([True]))
    with pytest.raises(ValueError, match="non-negative"):
        writer.append(np.array([-1]), np.array([True]))
    with pytest.raises(ValueError, match="at least one access"):
        writer.close()


def test_writer_rejects_undersized_nr_pages(tmp_path):
    writer = TraceWriter(tmp_path / "t", nr_pages=4)
    writer.append(np.array([9]), np.array([False]))
    with pytest.raises(ValueError, match="nr_pages must cover"):
        writer.close()


def test_writer_append_after_close(tmp_path):
    vpns, writes = sample_arrays(n=10)
    writer = TraceWriter(tmp_path / "t")
    writer.append(vpns, writes)
    writer.close()
    with pytest.raises(RuntimeError, match="closed"):
        writer.append(vpns, writes)
    # A second close is a no-op returning the persisted manifest.
    assert writer.close().accesses == 10


def test_import_text_trace_line_shapes(tmp_path):
    src = tmp_path / "dump.txt"
    src.write_text(
        "# header comment\n"
        "4,r\n"
        "5 w\n"
        "6,1\n"
        "7,0\n"
        "\n"
        "8   # bare vpn is a read\n"
    )
    manifest = import_text_trace(src, tmp_path / "t")
    vpns, writes = manifest.load_arrays()
    assert vpns.tolist() == [4, 5, 6, 7, 8]
    assert writes.tolist() == [False, True, True, False, False]
    assert manifest.generator["name"] == "import"
    manifest.verify()


@pytest.mark.parametrize(
    "line,match",
    [
        ("zap,r", "bad vpn"),
        ("-3,w", "negative vpn"),
        ("4,x", "bad access kind"),
        ("4 r extra", "want 'vpn"),
    ],
)
def test_import_text_trace_rejects_bad_lines(tmp_path, line, match):
    src = tmp_path / "dump.txt"
    src.write_text("1,r\n" + line + "\n")
    with pytest.raises(ValueError, match=match):
        import_text_trace(src, tmp_path / "t")
