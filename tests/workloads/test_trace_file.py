"""Trace record/replay workloads."""

import numpy as np
import pytest

from repro.mem.tiers import FAST_TIER, SLOW_TIER
from repro.obs.export import counter_digest
from repro.policies import make_policy
from repro.workloads import (
    StreamingTraceWorkload,
    TraceWorkload,
    ZipfianMicrobench,
    build_trace,
    record_trace,
)

from ..conftest import make_machine


def simple_trace(n=500, pages=32, seed=0):
    rng = np.random.default_rng(seed)
    vpns = rng.integers(0, pages, n)
    writes = rng.random(n) < 0.3
    return vpns, writes


def test_replay_matches_input():
    vpns, writes = simple_trace()
    wl = TraceWorkload(vpns, writes, nr_pages=32, chunk_size=64)
    m = make_machine()
    wl.bind(m)
    replayed_v, replayed_w = [], []
    for v, w in wl.chunks():
        replayed_v.append(v - wl._start)
        replayed_w.append(w)
    assert np.array_equal(np.concatenate(replayed_v), vpns)
    assert np.array_equal(np.concatenate(replayed_w), writes)


def test_fast_fraction_placement():
    vpns, writes = simple_trace(pages=100)
    wl = TraceWorkload(vpns, writes, nr_pages=100, fast_fraction=0.5)
    m = make_machine()
    wl.bind(m)
    pt = wl.space.page_table
    tiers = m.tiers.tier_of_gpfn[pt.gpfn[np.arange(wl._start, wl._start + 100)]]
    assert (tiers[:50] == FAST_TIER).all()
    assert (tiers[50:] == SLOW_TIER).all()


def test_save_load_roundtrip(tmp_path):
    vpns, writes = simple_trace()
    wl = TraceWorkload(vpns, writes, nr_pages=40, fast_fraction=0.25)
    path = tmp_path / "trace.npz"
    wl.save(path)
    loaded = TraceWorkload.load(path)
    assert np.array_equal(loaded.trace_vpns, vpns)
    assert np.array_equal(loaded.trace_writes, writes)
    assert loaded.nr_pages == 40
    assert loaded.fast_fraction == 0.25


def test_load_rejects_future_version(tmp_path):
    vpns, writes = simple_trace()
    path = tmp_path / "trace.npz"
    np.savez_compressed(
        path,
        version=np.int64(99),
        vpns=vpns,
        writes=writes,
        nr_pages=np.int64(32),
        fast_fraction=np.float64(1.0),
    )
    with pytest.raises(ValueError, match="version"):
        TraceWorkload.load(path)


def test_validation():
    with pytest.raises(ValueError):
        TraceWorkload(np.array([]), np.array([]))
    with pytest.raises(ValueError):
        TraceWorkload(np.array([1, 2]), np.array([True]))
    with pytest.raises(ValueError):
        TraceWorkload(np.array([-1]), np.array([True]))
    with pytest.raises(ValueError):
        TraceWorkload(np.array([5]), np.array([True]), nr_pages=3)
    with pytest.raises(ValueError):
        TraceWorkload(np.array([0]), np.array([True]), fast_fraction=2.0)


def test_record_trace_from_synthetic_workload():
    m = make_machine()
    source = ZipfianMicrobench(
        wss_gb=0.5, rss_gb=0.5, total_accesses=1000, seed=9
    )
    captured = record_trace(source, m)
    assert captured.total_accesses == 1000
    assert captured.nr_pages <= 128  # 0.5 GB = 128 pages footprint


def test_replay_is_policy_comparable():
    """The same trace replays identically under two machines, making
    cross-policy comparisons exact."""
    vpns, writes = simple_trace(n=2000, pages=600, seed=4)

    def run(policy):
        m = make_machine(fast_gb=1.0, slow_gb=2.0)
        m.set_policy(make_policy(policy, m))
        wl = TraceWorkload(vpns, writes, nr_pages=600, fast_fraction=0.3)
        return m.run_workload(wl)

    a = run("no-migration")
    b = run("nomad")
    assert a.overall.accesses == b.overall.accesses == 2000


def test_trace_runs_to_completion_under_nomad():
    vpns, writes = simple_trace(n=3000, pages=400, seed=5)
    m = make_machine(fast_gb=1.0, slow_gb=2.0)
    m.set_policy(make_policy("nomad", m))
    wl = TraceWorkload(vpns, writes, nr_pages=400, fast_fraction=0.5)
    report = m.run_workload(wl)
    assert report.overall.accesses == 3000


def test_validation_messages_name_the_knob():
    """Errors follow the MachineConfig convention: knob, bound, value."""
    vpns, writes = simple_trace(pages=32)
    with pytest.raises(ValueError, match=r"nr_pages must be at least the "
                       r"trace footprint .*got 8"):
        TraceWorkload(vpns, writes, nr_pages=8)
    with pytest.raises(ValueError, match=r"fast_fraction must be in \[0, 1\], "
                       r"got -0\.1"):
        TraceWorkload(vpns, writes, fast_fraction=-0.1)
    with pytest.raises(ValueError, match=r"vpn_base must be non-negative, "
                       r"got -4"):
        TraceWorkload(vpns, writes, vpn_base=-4)


def run_replay(make_workload, n_accesses):
    m = make_machine(fast_gb=1.0, slow_gb=2.0)
    m.set_policy(make_policy("nomad", m))
    report = m.run_workload(make_workload())
    assert report.workload_counters["accesses"] == n_accesses
    return counter_digest(report.counters), report.cycles


def test_record_save_load_replay_bit_identity(tmp_path):
    """The full legacy-v1 loop: a captured trace, pushed through
    save -> load, replays bit-identically to the in-memory original."""
    source = ZipfianMicrobench(
        wss_gb=0.5, rss_gb=1.5, total_accesses=4000, seed=11
    )
    captured = record_trace(source, make_machine(), fast_fraction=0.5)
    direct = run_replay(
        lambda: TraceWorkload(
            captured.trace_vpns, captured.trace_writes,
            nr_pages=captured.nr_pages, fast_fraction=0.5,
        ),
        4000,
    )
    path = tmp_path / "trace.npz"
    captured.save(path)
    reloaded = run_replay(lambda: TraceWorkload.load(path), 4000)
    assert reloaded == direct


def test_v2_manifest_load_and_streaming_are_bit_identical(tmp_path):
    """A v2 manifest replays identically whether materialized in RAM
    (TraceWorkload.load) or streamed shard by shard."""
    manifest = build_trace(
        tmp_path / "t", "zipf-drift",
        nr_pages=600, accesses=5000, seed=3, fast_fraction=0.5,
        shard_accesses=512,
    )
    in_ram = run_replay(lambda: TraceWorkload.load(tmp_path / "t"), 5000)
    streamed = run_replay(lambda: StreamingTraceWorkload(manifest), 5000)
    assert streamed == in_ram
    # Counters actually moved: the split footprint forces migrations.
    assert in_ram[0] != counter_digest({})


def test_v2_load_inherits_manifest_fast_fraction(tmp_path):
    build_trace(
        tmp_path / "t", "diurnal",
        nr_pages=64, accesses=500, seed=2, fast_fraction=0.25,
    )
    wl = TraceWorkload.load(tmp_path / "t")
    assert wl.fast_fraction == 0.25
    override = TraceWorkload.load(tmp_path / "t", fast_fraction=1.0)
    assert override.fast_fraction == 1.0


def test_vpn_base_namespaces_tenants(tmp_path):
    """Two trace workloads with stacked vpn_base get disjoint global
    vpn ranges; the pad region costs no frames."""
    manifest = build_trace(
        tmp_path / "t", "zipf-drift", nr_pages=50, accesses=400, seed=7,
    )
    m = make_machine()
    a = StreamingTraceWorkload(manifest, vpn_base=0, name="a")
    b = StreamingTraceWorkload(manifest, vpn_base=50, name="b")
    a.bind(m)
    b.bind(m)
    assert a._start + 50 <= b._start
    for wl in (a, b):
        vpns, _ = wl.generate(400)
        assert vpns.min() >= wl._start
        assert vpns.max() < wl._start + 50


def test_streaming_rechunks_across_shard_boundaries(tmp_path):
    manifest = build_trace(
        tmp_path / "t", "phase-shift", nr_pages=128, accesses=3000, seed=5,
        shard_accesses=700,
    )
    m = make_machine()
    wl = StreamingTraceWorkload(manifest, chunk_size=999)
    wl.bind(m)
    sizes = []
    parts = []
    for vpns, _ in wl.chunks():
        sizes.append(len(vpns))
        parts.append(vpns - wl._start)
    assert sizes == [999, 999, 999, 3]
    want, _ = manifest.load_arrays()
    assert np.array_equal(np.concatenate(parts), want)


def test_streaming_verify_flag_catches_corruption(tmp_path):
    manifest = build_trace(
        tmp_path / "t", "diurnal", nr_pages=64, accesses=1000, seed=1,
        shard_accesses=256,
    )
    victim = tmp_path / "t" / manifest.shards[0]["file"]
    with np.load(victim) as data:
        np.savez_compressed(
            victim, vpns=data["vpns"] + 1, writes=data["writes"]
        )
    StreamingTraceWorkload(tmp_path / "t")  # lazy: no verification
    with pytest.raises(ValueError, match="digest mismatch"):
        StreamingTraceWorkload(tmp_path / "t", verify=True)
