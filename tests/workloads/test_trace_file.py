"""Trace record/replay workloads."""

import numpy as np
import pytest

from repro.mem.tiers import FAST_TIER, SLOW_TIER
from repro.policies import make_policy
from repro.workloads import TraceWorkload, ZipfianMicrobench, record_trace

from ..conftest import make_machine


def simple_trace(n=500, pages=32, seed=0):
    rng = np.random.default_rng(seed)
    vpns = rng.integers(0, pages, n)
    writes = rng.random(n) < 0.3
    return vpns, writes


def test_replay_matches_input():
    vpns, writes = simple_trace()
    wl = TraceWorkload(vpns, writes, nr_pages=32, chunk_size=64)
    m = make_machine()
    wl.bind(m)
    replayed_v, replayed_w = [], []
    for v, w in wl.chunks():
        replayed_v.append(v - wl._start)
        replayed_w.append(w)
    assert np.array_equal(np.concatenate(replayed_v), vpns)
    assert np.array_equal(np.concatenate(replayed_w), writes)


def test_fast_fraction_placement():
    vpns, writes = simple_trace(pages=100)
    wl = TraceWorkload(vpns, writes, nr_pages=100, fast_fraction=0.5)
    m = make_machine()
    wl.bind(m)
    pt = wl.space.page_table
    tiers = m.tiers.tier_of_gpfn[pt.gpfn[np.arange(wl._start, wl._start + 100)]]
    assert (tiers[:50] == FAST_TIER).all()
    assert (tiers[50:] == SLOW_TIER).all()


def test_save_load_roundtrip(tmp_path):
    vpns, writes = simple_trace()
    wl = TraceWorkload(vpns, writes, nr_pages=40, fast_fraction=0.25)
    path = tmp_path / "trace.npz"
    wl.save(path)
    loaded = TraceWorkload.load(path)
    assert np.array_equal(loaded.trace_vpns, vpns)
    assert np.array_equal(loaded.trace_writes, writes)
    assert loaded.nr_pages == 40
    assert loaded.fast_fraction == 0.25


def test_load_rejects_future_version(tmp_path):
    vpns, writes = simple_trace()
    path = tmp_path / "trace.npz"
    np.savez_compressed(
        path,
        version=np.int64(99),
        vpns=vpns,
        writes=writes,
        nr_pages=np.int64(32),
        fast_fraction=np.float64(1.0),
    )
    with pytest.raises(ValueError, match="version"):
        TraceWorkload.load(path)


def test_validation():
    with pytest.raises(ValueError):
        TraceWorkload(np.array([]), np.array([]))
    with pytest.raises(ValueError):
        TraceWorkload(np.array([1, 2]), np.array([True]))
    with pytest.raises(ValueError):
        TraceWorkload(np.array([-1]), np.array([True]))
    with pytest.raises(ValueError):
        TraceWorkload(np.array([5]), np.array([True]), nr_pages=3)
    with pytest.raises(ValueError):
        TraceWorkload(np.array([0]), np.array([True]), fast_fraction=2.0)


def test_record_trace_from_synthetic_workload():
    m = make_machine()
    source = ZipfianMicrobench(
        wss_gb=0.5, rss_gb=0.5, total_accesses=1000, seed=9
    )
    captured = record_trace(source, m)
    assert captured.total_accesses == 1000
    assert captured.nr_pages <= 128  # 0.5 GB = 128 pages footprint


def test_replay_is_policy_comparable():
    """The same trace replays identically under two machines, making
    cross-policy comparisons exact."""
    vpns, writes = simple_trace(n=2000, pages=600, seed=4)

    def run(policy):
        m = make_machine(fast_gb=1.0, slow_gb=2.0)
        m.set_policy(make_policy(policy, m))
        wl = TraceWorkload(vpns, writes, nr_pages=600, fast_fraction=0.3)
        return m.run_workload(wl)

    a = run("no-migration")
    b = run("nomad")
    assert a.overall.accesses == b.overall.accesses == 2000


def test_trace_runs_to_completion_under_nomad():
    vpns, writes = simple_trace(n=3000, pages=400, seed=5)
    m = make_machine(fast_gb=1.0, slow_gb=2.0)
    m.set_policy(make_policy("nomad", m))
    wl = TraceWorkload(vpns, writes, nr_pages=400, fast_fraction=0.5)
    report = m.run_workload(wl)
    assert report.overall.accesses == 3000
