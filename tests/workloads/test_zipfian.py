"""Zipfian micro-benchmark: layout fidelity and distribution shape."""

import numpy as np
import pytest

from repro.mem.tiers import FAST_TIER, SLOW_TIER
from repro.sim.platform import gb_to_pages
from repro.workloads import SCENARIOS, ZipfianMicrobench
from repro.workloads.base import ZipfGenerator

from ..conftest import make_machine


def test_zipf_generator_rank_zero_hottest():
    gen = ZipfGenerator(1000, theta=0.99, seed=1)
    ranks = gen.sample(50_000)
    counts = np.bincount(ranks, minlength=1000)
    assert counts[0] == counts.max()
    assert counts[0] > 5 * counts[500]


def test_zipf_generator_bounds():
    gen = ZipfGenerator(10, seed=2)
    ranks = gen.sample(10_000)
    assert ranks.min() >= 0
    assert ranks.max() < 10


def test_zipf_theta_zero_is_uniform():
    gen = ZipfGenerator(100, theta=0.0, seed=3)
    ranks = gen.sample(100_000)
    counts = np.bincount(ranks, minlength=100)
    assert counts.min() > 0.7 * counts.mean()


def test_zipf_probability_sums_to_one():
    gen = ZipfGenerator(50, theta=0.9)
    total = sum(gen.probability(r) for r in range(50))
    assert total == pytest.approx(1.0)


def test_zipf_invalid_args():
    with pytest.raises(ValueError):
        ZipfGenerator(0)
    with pytest.raises(ValueError):
        ZipfGenerator(10, theta=-1)


def test_scenarios_match_paper():
    assert SCENARIOS["small"] == (10.0, 20.0)
    assert SCENARIOS["medium"] == (13.5, 27.0)
    assert SCENARIOS["large"] == (27.0, 27.0)


def test_layout_small_scenario():
    """Section 4.1's small WSS: 10 GB prefill in fast, then the WSS fills
    the rest of fast and spills to slow."""
    m = make_machine(fast_gb=16.0, slow_gb=16.0)
    wl = ZipfianMicrobench(wss_gb=10.0, rss_gb=20.0, total_accesses=100)
    wl.bind(m)
    assert wl.prefill_pages == gb_to_pages(10.0)
    assert wl.wss_pages == gb_to_pages(10.0)
    pt = wl.space.page_table
    wss_vpns = np.arange(wl.prefill_pages, wl.prefill_pages + wl.wss_pages)
    tiers = m.tiers.tier_of_gpfn[pt.gpfn[wss_vpns]]
    on_fast = int((tiers == FAST_TIER).sum())
    on_slow = int((tiers == SLOW_TIER).sum())
    # ~6 GB of WSS in fast, ~4 GB spilled (modulo the watermark reserve).
    assert on_slow >= gb_to_pages(4.0)
    assert on_fast + on_slow == wl.wss_pages
    assert on_fast > gb_to_pages(5.0)


def test_frequency_opt_places_hottest_in_fast():
    m = make_machine(fast_gb=1.0, slow_gb=1.0)
    wl = ZipfianMicrobench(
        wss_gb=2.0, rss_gb=2.0, placement="frequency-opt", total_accesses=100
    )
    wl.bind(m)
    pt = wl.space.page_table
    hottest = wl.hot_pages(50)
    tiers = m.tiers.tier_of_gpfn[pt.gpfn[hottest]]
    assert (tiers == FAST_TIER).all()


def test_random_placement_mixes_tiers():
    m = make_machine(fast_gb=1.0, slow_gb=1.0)
    wl = ZipfianMicrobench(
        wss_gb=2.0, rss_gb=2.0, placement="random", total_accesses=100, seed=5
    )
    wl.bind(m)
    pt = wl.space.page_table
    hottest = wl.hot_pages(50)
    tiers = m.tiers.tier_of_gpfn[pt.gpfn[hottest]]
    assert (tiers == FAST_TIER).any()
    assert (tiers == SLOW_TIER).any()


def test_accesses_stay_inside_wss():
    m = make_machine()
    wl = ZipfianMicrobench(wss_gb=0.5, rss_gb=1.0, total_accesses=2000)
    wl.bind(m)
    lo = wl.prefill_pages
    hi = lo + wl.wss_pages
    for vpns, writes in wl.chunks():
        assert vpns.min() >= lo
        assert vpns.max() < hi


def test_write_ratio_extremes():
    m = make_machine()
    wl = ZipfianMicrobench(wss_gb=0.5, rss_gb=0.5, write_ratio=1.0, total_accesses=256)
    wl.bind(m)
    _, writes = wl.generate(100)
    assert writes.all()
    wl2 = ZipfianMicrobench(wss_gb=0.5, rss_gb=0.5, write_ratio=0.0, total_accesses=256)
    m2 = make_machine()
    wl2.bind(m2)
    _, writes2 = wl2.generate(100)
    assert not writes2.any()


def test_seeded_determinism():
    def trace(seed):
        m = make_machine()
        wl = ZipfianMicrobench(
            wss_gb=0.5, rss_gb=0.5, total_accesses=500, seed=seed
        )
        wl.bind(m)
        return np.concatenate([v for v, _ in wl.chunks()])

    assert np.array_equal(trace(7), trace(7))
    assert not np.array_equal(trace(7), trace(8))


def test_invalid_parameters():
    with pytest.raises(ValueError):
        ZipfianMicrobench(wss_gb=10, rss_gb=5)
    with pytest.raises(ValueError):
        ZipfianMicrobench(write_ratio=1.5)
    with pytest.raises(ValueError):
        ZipfianMicrobench(placement="hottest-first")


def test_chunks_respect_total_accesses():
    m = make_machine()
    wl = ZipfianMicrobench(wss_gb=0.5, rss_gb=0.5, total_accesses=1000)
    wl.bind(m)
    total = sum(len(v) for v, _ in wl.chunks())
    assert total == 1000
