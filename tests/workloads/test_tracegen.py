"""Trace generators: determinism, manifest metadata, interleaving.

Includes the replay-determinism property (hypothesis): any generated
trace replays bit-identically on two independently built machines.
"""

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.export import counter_digest
from repro.policies import make_policy
from repro.workloads import (
    GENERATORS,
    StreamingTraceWorkload,
    TraceWorkload,
    build_trace,
    default_params,
    generate_chunks,
    interleave_tenants,
)

from ..conftest import make_machine


def materialize(generator, **kwargs):
    parts = list(generate_chunks(generator, **kwargs))
    return (
        np.concatenate([v for v, _ in parts]),
        np.concatenate([w for _, w in parts]),
    )


@pytest.mark.parametrize("generator", sorted(GENERATORS))
def test_generator_deterministic_and_seed_sensitive(generator):
    kwargs = dict(nr_pages=256, accesses=3000, seed=9)
    v1, w1 = materialize(generator, **kwargs)
    v2, w2 = materialize(generator, **kwargs)
    assert np.array_equal(v1, v2)
    assert np.array_equal(w1, w2)
    assert len(v1) == 3000
    assert 0 <= v1.min() and v1.max() < 256
    v3, _ = materialize(generator, nr_pages=256, accesses=3000, seed=10)
    assert not np.array_equal(v1, v3)


def test_generate_chunks_rejects_unknown_generator():
    with pytest.raises(ValueError, match="unknown trace generator"):
        list(generate_chunks("wavelet", nr_pages=8, accesses=8, seed=0))


def test_generate_chunks_rejects_unknown_params():
    with pytest.raises(ValueError, match="unknown zipf-drift params"):
        list(
            generate_chunks(
                "zipf-drift", nr_pages=8, accesses=8, seed=0,
                params={"wobble": 3},
            )
        )


def test_build_trace_digest_is_reproducible(tmp_path):
    kwargs = dict(nr_pages=512, accesses=8_000, seed=21)
    a = build_trace(tmp_path / "a", "phase-shift", **kwargs)
    b = build_trace(tmp_path / "b", "phase-shift", **kwargs)
    assert a.digest == b.digest
    assert [s["sha256"] for s in a.shards] == [s["sha256"] for s in b.shards]
    c = build_trace(tmp_path / "c", "phase-shift", nr_pages=512,
                    accesses=8_000, seed=22)
    assert a.digest != c.digest


def test_build_trace_records_effective_params(tmp_path):
    manifest = build_trace(
        tmp_path / "t", "diurnal", nr_pages=128, accesses=1000, seed=1,
        params={"periods": 3.0},
    )
    want = default_params("diurnal")
    want["periods"] = 3.0
    assert manifest.generator == {
        "name": "diurnal", "params": want, "seed": 1,
    }


def test_interleave_layout_and_namespacing(tmp_path):
    tenants = [
        {"name": "a", "generator": "zipf-drift", "nr_pages": 100,
         "accesses": 1200, "seed": 1},
        {"name": "b", "generator": "diurnal", "nr_pages": 60,
         "accesses": 800, "seed": 2, "weight": 2.0},
    ]
    manifest = interleave_tenants(tmp_path / "t", tenants, quantum=64)
    assert manifest.accesses == 2000
    assert manifest.nr_pages == 160
    layout = manifest.tenants
    assert [t["name"] for t in layout] == ["a", "b"]
    assert [t["base"] for t in layout] == [0, 100]
    vpns, _ = manifest.load_arrays()
    in_a = (vpns < 100).sum()
    in_b = ((vpns >= 100) & (vpns < 160)).sum()
    # Namespacing partitions the stream exactly: every access falls in
    # its tenant's range and per-tenant counts are preserved.
    assert in_a == 1200
    assert in_b == 800
    # Per-tenant order is preserved: tenant b's stream, stripped of the
    # base offset, equals its standalone generation.
    solo_v, _ = materialize("diurnal", nr_pages=60, accesses=800, seed=2)
    assert np.array_equal(vpns[vpns >= 100] - 100, solo_v)


def test_interleave_is_deterministic(tmp_path):
    tenants = [
        {"generator": "zipf-drift", "nr_pages": 64, "accesses": 500,
         "seed": 5},
        {"generator": "phase-shift", "nr_pages": 64, "accesses": 700,
         "seed": 6},
    ]
    a = interleave_tenants(tmp_path / "a", tenants, quantum=32)
    b = interleave_tenants(tmp_path / "b", tenants, quantum=32)
    assert a.digest == b.digest


def test_interleave_validation(tmp_path):
    with pytest.raises(ValueError, match="at least one tenant"):
        interleave_tenants(tmp_path / "t", [])
    with pytest.raises(ValueError, match="quantum must be positive"):
        interleave_tenants(
            tmp_path / "t",
            [{"generator": "diurnal", "nr_pages": 8, "accesses": 8}],
            quantum=0,
        )
    with pytest.raises(ValueError, match="weight must be positive"):
        interleave_tenants(
            tmp_path / "t",
            [{"generator": "diurnal", "nr_pages": 8, "accesses": 8,
              "weight": 0.0}],
        )


def replay_digest(workload_factory):
    """Run a fresh workload on a fresh machine; digest its counters."""
    m = make_machine(fast_gb=1.0, slow_gb=2.0)
    m.set_policy(make_policy("nomad", m))
    report = m.run_workload(workload_factory())
    return counter_digest(report.counters), report.cycles


@settings(max_examples=8, deadline=None)
@given(
    generator=st.sampled_from(sorted(GENERATORS)),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_replay_deterministic_across_fresh_machines(generator, seed):
    """Property: a generated trace replays bit-identically on two
    independently constructed machines (no hidden global state)."""
    with tempfile.TemporaryDirectory(prefix="repro-tracegen-") as tmp:
        manifest = build_trace(
            Path(tmp) / "t", generator,
            nr_pages=300, accesses=2_000, seed=seed, fast_fraction=0.5,
        )
        first = replay_digest(lambda: StreamingTraceWorkload(manifest))
        second = replay_digest(lambda: StreamingTraceWorkload(manifest))
        assert first == second
        # And the streaming replay equals the materialized replay.
        in_ram = replay_digest(lambda: TraceWorkload.load(manifest.base_dir))
        assert in_ram == first
