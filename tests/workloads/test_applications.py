"""Application workload models: YCSB/KV store, PageRank, Liblinear,
sequential scan, pointer chase."""

import numpy as np
import pytest

from repro.mem.tiers import SLOW_TIER
from repro.sim.platform import gb_to_pages
from repro.workloads import (
    KvStoreLayout,
    LiblinearWorkload,
    PageRankWorkload,
    PointerChase,
    SeqScanWorkload,
    YcsbWorkload,
)

from ..conftest import make_machine


# ----------------------------------------------------------------------
# KV store layout
# ----------------------------------------------------------------------
def test_kv_layout_sizing():
    layout = KvStoreLayout.for_rss_gb(2.0)
    assert abs(layout.total_pages - gb_to_pages(2.0)) <= 2
    assert layout.index_pages >= 1
    assert layout.value_pages > layout.index_pages


def test_kv_layout_page_mapping_in_bounds():
    layout = KvStoreLayout(nr_records=1000)
    keys = np.arange(1000)
    index_vpns, value_vpns = layout.pages_for_keys(keys, 100, 200)
    assert index_vpns.min() >= 100
    assert index_vpns.max() < 100 + layout.index_pages
    assert value_vpns.min() >= 200
    assert value_vpns.max() < 200 + layout.value_pages


def test_kv_layout_records_share_pages():
    layout = KvStoreLayout(nr_records=100, records_per_page=2)
    keys = np.array([0, 1, 2, 3])
    _, value_vpns = layout.pages_for_keys(keys, 0, 0)
    assert value_vpns[0] == value_vpns[1]
    assert value_vpns[2] == value_vpns[3]
    assert value_vpns[0] != value_vpns[2]


def test_kv_layout_validation():
    with pytest.raises(ValueError):
        KvStoreLayout(nr_records=0)


# ----------------------------------------------------------------------
# YCSB
# ----------------------------------------------------------------------
def test_ycsb_case_table():
    wl = YcsbWorkload.case("case1", total_accesses=100)
    assert wl.rss_gb == 13.0 and wl.demote_all
    wl3 = YcsbWorkload.case("case3", total_accesses=100)
    assert not wl3.demote_all


def test_ycsb_ops_touch_index_then_value():
    m = make_machine(fast_gb=4.0, slow_gb=4.0)
    wl = YcsbWorkload(rss_gb=2.0, total_accesses=1000)
    wl.bind(m)
    vpns, writes = wl.generate(100)
    assert len(vpns) == 100
    # Even positions are index lookups (never written).
    assert not writes[0::2].any()
    index_hi = wl._index_start + wl.layout.index_pages
    assert (vpns[0::2] < index_hi).all()
    assert (vpns[1::2] >= wl._value_start).all()


def test_ycsb_update_ratio_roughly_half():
    m = make_machine(fast_gb=4.0, slow_gb=4.0)
    wl = YcsbWorkload(rss_gb=2.0, total_accesses=4000, seed=9)
    wl.bind(m)
    vpns, writes = wl.generate(4000)
    frac = writes[1::2].mean()
    assert 0.4 < frac < 0.6  # workload A: 50/50


def test_ycsb_demote_all_starts_cold():
    m = make_machine(fast_gb=4.0, slow_gb=8.0)
    wl = YcsbWorkload(rss_gb=3.0, demote_all=True, total_accesses=100)
    wl.bind(m)
    pt = wl.space.page_table
    mapped = pt.mapped_vpns()
    tiers = m.tiers.tier_of_gpfn[pt.gpfn[mapped]]
    assert (tiers == SLOW_TIER).all()


def test_ycsb_throughput_math():
    wl = YcsbWorkload(rss_gb=1.0, total_accesses=100)
    # 1000 accesses = 500 ops over 1e9 cycles at 1 GHz = 1 second.
    assert wl.throughput_ops(1000, 1e9, 1.0) == pytest.approx(500.0)


# ----------------------------------------------------------------------
# PageRank
# ----------------------------------------------------------------------
def test_pagerank_geometry():
    m = make_machine(fast_gb=16.0, slow_gb=16.0)
    wl = PageRankWorkload(rss_gb=22.0, total_accesses=100)
    wl.bind(m)
    assert wl.edge_pages > 10 * wl.rank_pages  # edges dominate the RSS
    assert wl.edge_pages + 2 * wl.rank_pages == pytest.approx(
        gb_to_pages(22.0), abs=2
    )


def test_pagerank_access_mix():
    m = make_machine(fast_gb=16.0, slow_gb=16.0)
    wl = PageRankWorkload(rss_gb=4.0, total_accesses=10_000)
    wl.bind(m)
    vpns, writes = wl.generate(600)
    group = 2 + wl.gathers_per_edge_page
    # One write (next-rank update) per group.
    assert writes.sum() == len(vpns) // group
    # Edge reads are sequential.
    edge_reads = vpns[0::group]
    assert ((edge_reads[1:] - edge_reads[:-1]) % wl.edge_pages == 1).all()


def test_pagerank_iterations_counted():
    m = make_machine(fast_gb=16.0, slow_gb=16.0)
    wl = PageRankWorkload(rss_gb=0.5, total_accesses=10_000)
    wl.bind(m)
    for _ in wl.chunks():
        pass
    assert wl.iterations_completed >= 1


def test_pagerank_is_compute_heavy():
    assert PageRankWorkload.compute_cycles_per_access > 0


# ----------------------------------------------------------------------
# Liblinear
# ----------------------------------------------------------------------
def test_liblinear_geometry():
    m = make_machine(fast_gb=8.0, slow_gb=8.0)
    wl = LiblinearWorkload(rss_gb=10.0, total_accesses=100)
    wl.bind(m)
    assert wl.model_pages < wl.data_pages
    assert wl.model_pages + wl.data_pages == gb_to_pages(10.0)


def test_liblinear_model_is_write_hot():
    m = make_machine(fast_gb=8.0, slow_gb=8.0)
    wl = LiblinearWorkload(rss_gb=2.0, total_accesses=10_000, seed=4)
    wl.bind(m)
    vpns, writes = wl.generate(7000)
    model_mask = (vpns >= wl._model_start) & (
        vpns < wl._model_start + wl.model_pages
    )
    data_mask = vpns >= wl._data_start
    assert not writes[data_mask].any()  # data is read-only
    model_write_frac = writes[model_mask].mean()
    assert 0.3 < model_write_frac < 0.7


def test_liblinear_model_writes_are_bursty():
    """Model touches cluster in a drifting window (Table 4's abort
    driver)."""
    m = make_machine(fast_gb=8.0, slow_gb=8.0)
    wl = LiblinearWorkload(rss_gb=4.0, total_accesses=10_000, seed=4)
    wl.bind(m)
    vpns, _ = wl.generate(700)
    model = vpns[(vpns >= wl._model_start) & (vpns < wl._model_start + wl.model_pages)]
    spread = np.ptp(model)
    assert spread <= 2 * wl.model_window_pages + wl.model_pages // 8


def test_liblinear_demote_all_default():
    m = make_machine(fast_gb=8.0, slow_gb=16.0)
    wl = LiblinearWorkload(rss_gb=4.0, total_accesses=100)
    wl.bind(m)
    pt = wl.space.page_table
    mapped = pt.mapped_vpns()
    tiers = m.tiers.tier_of_gpfn[pt.gpfn[mapped]]
    assert (tiers == SLOW_TIER).all()


# ----------------------------------------------------------------------
# SeqScan
# ----------------------------------------------------------------------
def test_seqscan_is_sequential_and_wraps():
    m = make_machine(fast_gb=8.0, slow_gb=8.0)
    wl = SeqScanWorkload(rss_gb=0.5, total_accesses=1000)
    wl.bind(m)
    vpns, _ = wl.generate(300)
    diffs = (vpns[1:] - vpns[:-1]) % wl.rss_pages
    assert (diffs == 1).all()
    for _ in wl.chunks():
        pass
    assert wl.scans_completed >= 1


def test_seqscan_write_ratio():
    m = make_machine(fast_gb=8.0, slow_gb=8.0)
    wl = SeqScanWorkload(rss_gb=0.5, write_ratio=1.0, total_accesses=100)
    wl.bind(m)
    _, writes = wl.generate(50)
    assert writes.all()


# ----------------------------------------------------------------------
# Pointer chase
# ----------------------------------------------------------------------
def test_pointer_chase_block_structure():
    m = make_machine(fast_gb=8.0, slow_gb=8.0)
    wl = PointerChase(nr_blocks=4, block_gb=1.0, total_accesses=20_000, seed=2)
    wl.bind(m)
    vpns, writes = wl.generate(10_000)
    assert not writes.any()
    blocks = (vpns - wl._start) // wl.block_pages
    counts = np.bincount(blocks, minlength=4)
    # Inter-block zipfian: the hottest block dominates.
    assert counts.max() > 2 * np.sort(counts)[-3]
    # Intra-block uniform: pages within the hottest block are even.
    hot_block = int(np.argmax(counts))
    in_hot = vpns[blocks == hot_block] - wl._start - hot_block * wl.block_pages
    page_counts = np.bincount(in_hot, minlength=wl.block_pages)
    assert page_counts.min() > 0.3 * page_counts.mean()


def test_pointer_chase_validation():
    with pytest.raises(ValueError):
        PointerChase(nr_blocks=0)


# ----------------------------------------------------------------------
# Workload base behaviours
# ----------------------------------------------------------------------
def test_rebinding_same_machine_is_idempotent():
    m = make_machine()
    wl = SeqScanWorkload(rss_gb=0.25, total_accesses=100)
    wl.bind(m)
    space = wl.space
    wl.bind(m)
    assert wl.space is space


def test_binding_two_machines_rejected():
    m1, m2 = make_machine(), make_machine()
    wl = SeqScanWorkload(rss_gb=0.25, total_accesses=100)
    wl.bind(m1)
    with pytest.raises(RuntimeError):
        wl.bind(m2)


def test_invalid_total_accesses():
    with pytest.raises(ValueError):
        SeqScanWorkload(total_accesses=0)
