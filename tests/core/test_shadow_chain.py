"""Cross-chain shadowing on deep tiers: the ``shadow_chain`` knob.

On a two-tier machine a promoted master can never itself be shadowed,
so these semantics only appear on chains of three or more tiers: a
2->1 promotion leaves the tier-2 copy as a shadow, then the master
climbs 1->0 while still owning that deep shadow. ``shadow_chain``
decides whether the second commit collapses the chain (``"drop"``) or
re-keys the deep shadow to the new master (``"rekey"``).
"""

import pytest

from repro import Machine, MachineConfig
from repro.core.nomad import NomadPolicy
from repro.core.queues import MigrationRequest
from repro.core.shadow import ShadowIndex
from repro.core.tpm import TpmOutcome, TransactionalMigrator
from repro.sim.platform import three_tier

from ..conftest import make_machine, tiny_platform


def make_machine3():
    """A three-tier machine with 256-page nodes."""
    return Machine(
        three_tier(tiny_platform(), ssd_gb=1.0),
        MachineConfig(chunk_size=64),
    )


def setup(machine, shadow_chain="drop"):
    shadow_index = ShadowIndex(machine)
    migrator = TransactionalMigrator(
        machine, shadow_index, shadow_chain=shadow_chain
    )
    space = machine.create_space()
    vma = space.mmap(4)
    machine.populate(space, [vma.start], 2)  # start on the bottom tier
    frame = machine.tiers.frame(int(space.page_table.gpfn[vma.start]))
    return migrator, shadow_index, space, vma.start, frame


def promote_once(machine, migrator, space, vpn):
    """Drive one TPM transaction promoting ``vpn``'s frame one tier up."""
    frame = machine.tiers.frame(int(space.page_table.gpfn[vpn]))
    request = MigrationRequest(frame, space, vpn, frame.generation)
    out = {}
    cpu = machine.cpus.get("kpromote")

    def proc():
        result = yield from migrator.migrate(request, cpu)
        out["result"] = result

    machine.engine.spawn(proc(), "txn")
    machine.engine.run(until=machine.engine.now + 10_000_000)
    result = out["result"]
    assert result.outcome is TpmOutcome.COMMITTED
    return frame, result.new_frame


def test_first_promotion_shadows_the_adjacent_tier():
    m = make_machine3()
    migrator, shadow_index, space, vpn, frame = setup(m)
    old, master = promote_once(m, migrator, space, vpn)
    assert master.node_id == 1
    assert old.node_id == 2
    assert old.is_shadow
    assert shadow_index.lookup(master) is old
    assert m.stats.get("nomad.shadow_chain_drops") == 0
    assert m.stats.get("nomad.shadow_chain_rekeys") == 0


def test_drop_collapses_the_chain_on_the_second_promotion():
    m = make_machine3()
    migrator, shadow_index, space, vpn, deep = setup(m, shadow_chain="drop")
    _, mid = promote_once(m, migrator, space, vpn)
    mid_free_before = m.tiers.nodes[2].nr_free
    _, top = promote_once(m, migrator, space, vpn)
    assert top.node_id == 0
    # The deep (tier-2) shadow died and its frame went back to the pool;
    # the tier-1 copy is now the only shadow.
    assert shadow_index.lookup(top) is mid
    assert mid.is_shadow and mid.node_id == 1
    assert not deep.is_shadow
    assert m.tiers.nodes[2].nr_free == mid_free_before + 1
    assert shadow_index.nr_shadows == 1
    assert m.stats.get("nomad.shadow_chain_drops") == 1
    assert m.stats.get("nomad.shadow_chain_rekeys") == 0


def test_rekey_keeps_the_deep_shadow_and_frees_the_middle():
    m = make_machine3()
    migrator, shadow_index, space, vpn, deep = setup(m, shadow_chain="rekey")
    _, mid = promote_once(m, migrator, space, vpn)
    mid_tier_free = m.tiers.nodes[1].nr_free
    _, top = promote_once(m, migrator, space, vpn)
    assert top.node_id == 0
    # The tier-2 shadow survives, re-keyed to the new tier-0 master; the
    # intermediate tier-1 frame is retired entirely.
    assert shadow_index.lookup(top) is deep
    assert deep.is_shadow and deep.node_id == 2
    assert m.tiers.nodes[1].nr_free == mid_tier_free + 1
    assert shadow_index.nr_shadows == 1
    assert m.stats.get("nomad.shadow_chain_rekeys") == 1
    assert m.stats.get("nomad.shadow_chain_drops") == 0


def test_shadow_chain_knob_is_validated():
    m = make_machine3()
    with pytest.raises(ValueError):
        TransactionalMigrator(m, ShadowIndex(m), shadow_chain="keep")
    with pytest.raises(ValueError):
        NomadPolicy(m, shadow_chain="collapse")


def test_nomad_policy_plumbs_the_knob_to_its_migrator():
    m = make_machine3()
    policy = NomadPolicy(m, shadow_chain="rekey")
    assert policy.migrator.shadow_chain == "rekey"
    assert NomadPolicy(make_machine()).migrator.shadow_chain == "drop"


def test_reclaim_hint_only_frees_shadows_on_the_pressured_node():
    """Each kswapd reclaims shadows resident on its own tier of a chain."""
    m = make_machine3()
    policy = NomadPolicy(m)
    m.set_policy(policy)
    space = m.create_space()
    vma = space.mmap(2)
    # One shadow lands on tier 2 (master promoted 2->1), the other on
    # tier 1 (master promoted 1->0).
    m.populate(space, [vma.start], 2)
    m.populate(space, [vma.start + 1], 1)
    promote_once(m, policy.migrator, space, vma.start)
    promote_once(m, policy.migrator, space, vma.start + 1)
    shadows = policy.shadow_index
    assert shadows.nr_shadows == 2
    cpu = m.cpus.get("kswapd1")
    freed, _ = policy.reclaim_hint(2, target=4, cpu=cpu)
    assert freed == 1  # only the tier-2 shadow was eligible
    remaining = shadows.lookup(
        m.tiers.frame(int(space.page_table.gpfn[vma.start + 1]))
    )
    assert remaining is not None and remaining.node_id == 1
    # Tier 0 never hosts shadows: the hint is a no-op there.
    assert policy.reclaim_hint(0, target=4, cpu=cpu) == (0, 0.0)
