"""The TierBPF-style promotion admission filter.

``NomadPolicy(admission_filter=...)`` installs a predicate consulted
right before a candidate moves from the PCQ into the MPQ; rejections
bump ``nomad.admission_rejected`` and the page simply stays where it
is -- the filter cannot reorder or mutate the pipeline, only veto.
"""

import numpy as np

from repro.core.nomad import NomadPolicy
from repro.mem.tiers import SLOW_TIER
from repro.mmu.pte import PTE_PROT_NONE

from ..conftest import make_machine


def build(**policy_kwargs):
    m = make_machine()
    policy = NomadPolicy(m, **policy_kwargs)
    m.set_policy(policy)
    space = m.create_space()
    return m, policy, space


def drive_candidate(m, space):
    """Fault a slow page into the PCQ, re-touch it, trigger the scan."""
    vma = space.mmap(1)
    m.populate(space, [vma.start], SLOW_TIER)
    vpn = vma.start
    space.page_table.set_flags(vpn, PTE_PROT_NONE)

    def touch(v):
        m.access.run_chunk(
            space,
            m.cpus.get("app0"),
            np.asarray([v], dtype=np.int64),
            np.zeros(1, dtype=bool),
        )

    touch(vpn)
    m.engine.run(until=m.engine.now + 200_000.0)
    touch(vpn)  # reuse evidence
    # Another page's fault triggers the PCQ scan.
    other = space.mmap(1).start
    m.populate(space, [other], SLOW_TIER)
    space.page_table.set_flags(other, PTE_PROT_NONE)
    touch(other)
    m.engine.run(until=m.engine.now + 10_000_000)
    return vpn


def test_rejecting_filter_blocks_promotion():
    m, policy, space = build(admission_filter=lambda req, src, dst: False)
    vpn = drive_candidate(m, space)
    assert m.stats.get("nomad.admission_rejected") >= 1
    assert len(policy.mpq) == 0
    assert m.stats.get("migrate.promotions") == 0
    assert m.tiers.tier_of(int(space.page_table.gpfn[vpn])) == SLOW_TIER


def test_filter_sees_source_and_destination_tiers():
    seen = []

    def spy(request, src, dst):
        seen.append((request.vpn, src, dst))
        return True

    m, policy, space = build(admission_filter=spy)
    vpn = drive_candidate(m, space)
    assert any(entry == (vpn, SLOW_TIER, 0) for entry in seen)
    # An admitting filter leaves the pipeline behaviour unchanged.
    assert m.stats.get("nomad.admission_rejected") == 0
    assert m.tiers.tier_of(int(space.page_table.gpfn[vpn])) == 0


def test_no_filter_admits_everything():
    m, policy, space = build()
    vpn = drive_candidate(m, space)
    assert m.stats.get("nomad.admission_rejected") == 0
    assert m.tiers.tier_of(int(space.page_table.gpfn[vpn])) == 0
