"""Nomad at folio granularity: PMD hint faults, daemon-side candidate
scanning, whole-folio shadows, first-store shadow collapse, free remap
demotion of shadowed folios."""

import numpy as np

from repro.core.nomad import NomadPolicy
from repro.mem.tiers import FAST_TIER, SLOW_TIER
from repro.mmu.pte import PTE_PROT_NONE, PTE_SOFT_SHADOW_RW

from ..conftest import make_machine


def build(**policy_kwargs):
    m = make_machine(thp_enabled=True, thp_order=4)
    policy = NomadPolicy(m, **policy_kwargs)
    m.set_policy(policy)
    space = m.create_space()
    return m, policy, space


def slow_folio(m, space):
    vma = space.mmap(m.folio_pages, thp=True)
    m.populate(space, [vma.start], SLOW_TIER)
    return vma.start


def touch(m, space, vpns, write=False):
    vpns = np.asarray(vpns, dtype=np.int64)
    writes = np.full(len(vpns), write, dtype=bool)
    return m.access.run_chunk(space, m.cpus.get("app0"), vpns, writes)


def arm_folio(m, space, head_vpn):
    space.page_table.set_flags_range(head_vpn, m.folio_pages, PTE_PROT_NONE)


def advance(m, dt=200_000.0):
    m.engine.run(until=m.engine.now + dt)


def folio_tiers(m, space, head_vpn):
    pt = space.page_table
    return {
        m.tiers.tier_of(int(pt.gpfn[head_vpn + off]))
        for off in range(m.folio_pages)
    }


def test_daemon_candidate_scan_installed_only_on_folio_machines():
    m, policy, _space = build()
    assert policy.kpromote.candidate_scan is not None
    base = make_machine()
    base_policy = NomadPolicy(base)
    assert base_policy.kpromote.candidate_scan is None


def test_folio_hint_fault_disarms_whole_block_without_migrating():
    m, policy, space = build()
    head = slow_folio(m, space)
    arm_folio(m, space, head)
    result = touch(m, space, [head + 7])  # any sub-page
    assert result.faults == 1
    pt = space.page_table
    for off in range(m.folio_pages):
        assert not pt.is_prot_none(head + off)
    assert m.stats.get("migrate.promotions") == 0
    assert folio_tiers(m, space, head) == {SLOW_TIER}


def promote_folio(m, policy, space, head):
    """Drive one folio through the Nomad pipeline: hint fault, hardware
    re-touch, then a helper fault to wake the scanning daemon."""
    arm_folio(m, space, head)
    touch(m, space, [head])
    advance(m)
    touch(m, space, [head])  # re-touch: accessed-bit evidence, no fault
    helper = slow_folio(m, space)
    arm_folio(m, space, helper)
    touch(m, space, [helper])
    m.engine.run(until=m.engine.now + 20_000_000)
    assert folio_tiers(m, space, head) == {FAST_TIER}


def test_one_fault_per_folio_migration():
    m, policy, space = build()
    head = slow_folio(m, space)
    promote_folio(m, policy, space, head)
    assert m.stats.get("fault.hint") == 2  # one per folio, helper included
    assert m.stats.get("nomad.tpm_commits") == 1
    assert m.stats.get("thp.folio_promotions") == 1
    # The whole slow folio lives on as one shadow.
    assert policy.shadow_index.nr_shadow_pages == m.folio_pages


def test_first_subpage_store_collapses_the_folio_shadow():
    m, policy, space = build()
    head = slow_folio(m, space)
    promote_folio(m, policy, space, head)
    pt = space.page_table
    assert not pt.is_writable(head)
    result = touch(m, space, [head + 5], write=True)
    assert result.faults == 1
    # One fault restores write permission to every sub-page.
    for off in range(m.folio_pages):
        assert pt.is_writable(head + off)
        assert not pt.test_flags(head + off, PTE_SOFT_SHADOW_RW)
    assert policy.shadow_index.nr_shadows == 0
    assert m.stats.get("thp.shadow_collapses") == 1
    # Later stores to other sub-pages fault no further.
    assert touch(m, space, [head + 11], write=True).faults == 0


def test_shadowed_folio_demotes_by_remap_without_copy():
    m, policy, space = build()
    head = slow_folio(m, space)
    promote_folio(m, policy, space, head)
    master = m.tiers.frame(int(space.page_table.gpfn[head]))
    fast_free = m.tiers.fast.nr_free
    ok, cycles = policy.demote_page(master, m.cpus.get("kswapd0"))
    assert ok
    assert folio_tiers(m, space, head) == {SLOW_TIER}
    pt = space.page_table
    for off in range(m.folio_pages):
        assert pt.is_huge(head + off)
        assert pt.is_writable(head + off)  # soft r/w restored
    assert m.stats.get("thp.folio_remap_demotions") == 1
    # The fast folio was freed; no page copy was charged.
    assert m.tiers.fast.nr_free == fast_free + m.folio_pages
    assert policy.shadow_index.nr_shadows == 0


def test_wants_split_only_for_unshadowed_huge_frames():
    m, policy, space = build()
    head = slow_folio(m, space)
    frame = m.tiers.frame(int(space.page_table.gpfn[head]))
    assert policy.wants_split(frame)
    promote_folio(m, policy, space, head)
    master = m.tiers.frame(int(space.page_table.gpfn[head]))
    assert master.shadowed
    assert not policy.wants_split(master)  # remap demotion is free
    vma = space.mmap(1)
    m.populate(space, [vma.start], SLOW_TIER)
    base = m.tiers.frame(int(space.page_table.gpfn[vma.start]))
    assert not policy.wants_split(base)
