"""Nomad corner cases: queue pressure, slow-node reclaim integration,
interactions between shadowing and the stock kernel paths."""

import numpy as np

from repro.core.nomad import NomadPolicy
from repro.mem.frame import FrameFlags
from repro.mem.tiers import FAST_TIER, SLOW_TIER
from repro.mmu.pte import PTE_PROT_NONE

from ..conftest import make_machine


def build(**kwargs):
    m = make_machine(fast_gb=2.0, slow_gb=2.0)
    policy = NomadPolicy(m, **kwargs)
    m.set_policy(policy)
    space = m.create_space()
    return m, policy, space


def touch(m, space, vpns, write=False):
    arr = np.asarray(vpns, dtype=np.int64)
    return m.access.run_chunk(
        space, m.cpus.get("app0"), arr, np.full(len(arr), write, dtype=bool)
    )


def test_pcq_eviction_under_fault_flood():
    m, policy, space = build(pcq_capacity=8)
    vma = space.mmap(32)
    m.populate(space, vma.vpns(), SLOW_TIER)
    for vpn in vma.vpns():
        space.page_table.set_flags(vpn, PTE_PROT_NONE)
        touch(m, space, [vpn])
    # Capacity bound held: at most 8 candidates retained.
    assert len(policy.pcq) <= 8


def test_hint_fault_on_fast_page_is_cheap_noop():
    m, policy, space = build()
    vma = space.mmap(1)
    m.populate(space, [vma.start], FAST_TIER)
    space.page_table.set_flags(vma.start, PTE_PROT_NONE)
    result = touch(m, space, [vma.start])
    assert result.faults == 1
    assert len(policy.pcq) == 0
    assert m.stats.get("migrate.promotions") == 0


def test_slow_node_pressure_reclaims_shadows_via_kswapd():
    """Fill the slow node until its watermark wakes kswapd; the policy's
    reclaim hint must free shadow pages."""
    m, policy, space = build()
    # Manufacture shadows directly through the index.
    masters, shadows = [], []
    for _ in range(12):
        master = m.tiers.alloc_on(FAST_TIER)
        shadow = m.tiers.alloc_on(SLOW_TIER)
        policy.shadow_index.insert(master, shadow)
    # Drain the slow node below its low watermark.
    hold = []
    while m.tiers.slow.nr_free >= m.tiers.slow.wmark_low:
        hold.append(m.tiers.alloc_on(SLOW_TIER))
    m.engine.run(until=5_000_000)
    assert m.stats.get("nomad.shadows_reclaimed") > 0
    assert policy.shadow_index.nr_shadows < 12


def test_remap_demote_declines_for_multimapped_master():
    m, policy, space = build()
    other = m.create_space("o")
    master = m.tiers.alloc_on(FAST_TIER)
    shadow = m.tiers.alloc_on(SLOW_TIER)
    vma = space.mmap(1)
    ovma = other.mmap(1)
    gpfn = m.tiers.gpfn(master)
    space.page_table.map(vma.start, gpfn, 0)
    other.page_table.map(ovma.start, gpfn, 0)
    master.add_rmap(space, vma.start)
    master.add_rmap(other, ovma.start)
    policy.shadow_index.insert(master, shadow)
    ok, cycles = policy._remap_demote(master, m.cpus.get("kswapd0"))
    assert not ok
    # Shadow untouched.
    assert policy.shadow_index.lookup(master) is shadow


def test_remap_demote_declines_for_locked_master():
    m, policy, space = build()
    master = m.tiers.alloc_on(FAST_TIER)
    shadow = m.tiers.alloc_on(SLOW_TIER)
    vma = space.mmap(1)
    space.page_table.map(vma.start, m.tiers.gpfn(master), 0)
    master.add_rmap(space, vma.start)
    policy.shadow_index.insert(master, shadow)
    master.set_flag(FrameFlags.LOCKED)
    ok, _ = policy.demote_page(master, m.cpus.get("kswapd0"))
    assert not ok
    master.clear_flag(FrameFlags.LOCKED)


def test_alloc_fail_with_no_shadows_returns_zero():
    m, policy, space = build()
    assert policy.on_alloc_fail(FAST_TIER, 1) == 0


def test_mpq_capacity_drops_excess_hot_pages():
    m, policy, space = build(mpq_capacity=2, pcq_capacity=64, pcq_scan_limit=64)
    vma = space.mmap(8)
    m.populate(space, vma.vpns(), SLOW_TIER)
    from repro.core.queues import MigrationRequest

    for vpn in vma.vpns():
        frame = m.tiers.frame(int(space.page_table.gpfn[vpn]))
        policy.mpq.push(MigrationRequest(frame, space, vpn, frame.generation))
    assert len(policy.mpq) == 2
    assert policy.mpq.dropped == 6


def test_shadowed_master_survives_kswapd_copy_demotion_path():
    """If stock migration demotes a shadowed master (e.g. via the Memtis
    valve or fallback), the shadow index follows the frame."""
    m, policy, space = build()
    master = m.tiers.alloc_on(FAST_TIER)
    shadow = m.tiers.alloc_on(SLOW_TIER)
    vma = space.mmap(1)
    space.page_table.map(vma.start, m.tiers.gpfn(master), 0)
    master.add_rmap(space, vma.start)
    m.lru.add_new_page(master)
    policy.shadow_index.insert(master, shadow)

    from repro.kernel.migrate import sync_migrate_page

    result = sync_migrate_page(m, master, SLOW_TIER, m.cpus.get("c"), "demotion")
    assert result.success
    assert policy.shadow_index.lookup(result.new_frame) is shadow
    assert result.new_frame.shadowed
    assert not master.shadowed


def test_wp_fault_after_shadow_reclaim_does_not_fire():
    """Reclaiming a shadow restores the master's write permission, so
    no write-protect fault remains."""
    m, policy, space = build()
    from repro.mmu.pte import PTE_SOFT_SHADOW_RW

    master = m.tiers.alloc_on(FAST_TIER)
    shadow = m.tiers.alloc_on(SLOW_TIER)
    vma = space.mmap(1)
    space.page_table.map(vma.start, m.tiers.gpfn(master), PTE_SOFT_SHADOW_RW)
    master.add_rmap(space, vma.start)
    policy.shadow_index.insert(master, shadow)
    policy.shadow_index.reclaim(1)
    result = touch(m, space, [vma.start], write=True)
    assert result.faults == 0
    assert space.page_table.is_dirty(vma.start)
