"""Shadow index: insert/discard/detach/rekey/reclaim and invariants."""

import pytest

from repro.core.shadow import ShadowIndex
from repro.mem.tiers import FAST_TIER, SLOW_TIER
from repro.mmu.pte import PTE_SOFT_SHADOW_RW
from repro.sim.costs import PAGE_SIZE

from ..conftest import make_machine


def make_pair(machine):
    """A fast master frame and a slow shadow frame."""
    master = machine.tiers.alloc_on(FAST_TIER)
    shadow = machine.tiers.alloc_on(SLOW_TIER)
    return master, shadow


def test_insert_sets_flags_and_indexes():
    m = make_machine()
    index = ShadowIndex(m)
    master, shadow = make_pair(m)
    index.insert(master, shadow)
    assert master.shadowed
    assert shadow.is_shadow
    assert index.lookup(master) is shadow
    assert index.nr_shadows == 1
    assert index.shadow_bytes == PAGE_SIZE


def test_insert_rejects_mapped_shadow():
    m = make_machine()
    index = ShadowIndex(m)
    master, shadow = make_pair(m)
    space = m.create_space()
    shadow.add_rmap(space, 0)
    with pytest.raises(RuntimeError):
        index.insert(master, shadow)


def test_insert_rejects_double_shadowing():
    m = make_machine()
    index = ShadowIndex(m)
    master, shadow = make_pair(m)
    index.insert(master, shadow)
    other = m.tiers.alloc_on(SLOW_TIER)
    with pytest.raises(RuntimeError):
        index.insert(master, other)


def test_discard_frees_shadow():
    m = make_machine()
    index = ShadowIndex(m)
    master, shadow = make_pair(m)
    free_before = m.tiers.slow.nr_free
    index.insert(master, shadow)
    returned = index.discard(master)
    assert returned is shadow
    assert not master.shadowed
    assert not shadow.is_shadow
    assert m.tiers.slow.nr_free == free_before + 1
    assert index.lookup(master) is None


def test_discard_without_shadow_is_none():
    m = make_machine()
    index = ShadowIndex(m)
    master, _ = make_pair(m)
    assert index.discard(master) is None


def test_detach_keeps_frame_allocated():
    m = make_machine()
    index = ShadowIndex(m)
    master, shadow = make_pair(m)
    index.insert(master, shadow)
    free_before = m.tiers.slow.nr_free
    returned = index.detach(master)
    assert returned is shadow
    assert m.tiers.slow.nr_free == free_before  # not freed
    assert not shadow.is_shadow
    assert index.nr_shadows == 0


def test_rekey_follows_master_migration():
    m = make_machine()
    index = ShadowIndex(m)
    master, shadow = make_pair(m)
    index.insert(master, shadow)
    new_master = m.tiers.alloc_on(FAST_TIER)
    index.rekey(master, new_master)
    assert not master.shadowed
    assert new_master.shadowed
    assert index.lookup(new_master) is shadow
    assert index.lookup(master) is None


def test_reclaim_frees_up_to_target():
    m = make_machine()
    index = ShadowIndex(m)
    pairs = [make_pair(m) for _ in range(5)]
    for master, shadow in pairs:
        index.insert(master, shadow)
    freed, cycles = index.reclaim(3)
    assert freed == 3
    assert cycles > 0
    assert index.nr_shadows == 2
    assert m.stats.get("nomad.shadows_reclaimed") == 3


def test_reclaim_stops_when_empty():
    m = make_machine()
    index = ShadowIndex(m)
    master, shadow = make_pair(m)
    index.insert(master, shadow)
    freed, _ = index.reclaim(10)
    assert freed == 1
    assert index.reclaim(10) == (0, 0.0)


def test_reclaim_restores_master_write_permission():
    m = make_machine()
    index = ShadowIndex(m)
    space = m.create_space()
    vma = space.mmap(1)
    master, shadow = make_pair(m)
    space.page_table.map(vma.start, m.tiers.gpfn(master), PTE_SOFT_SHADOW_RW)
    master.add_rmap(space, vma.start)
    index.insert(master, shadow)
    index.reclaim(1)
    # Without a shadow the master needs no write protection.
    assert space.page_table.is_writable(vma.start)
    assert not space.page_table.test_flags(vma.start, PTE_SOFT_SHADOW_RW)


def test_live_shadow_invariant_master_clean():
    """A live shadow implies its master has never been written: the
    master is read-only, so any store would have faulted and discarded
    the shadow first."""
    m = make_machine()
    index = ShadowIndex(m)
    space = m.create_space()
    vma = space.mmap(1)
    master, shadow = make_pair(m)
    space.page_table.map(vma.start, m.tiers.gpfn(master), PTE_SOFT_SHADOW_RW)
    master.add_rmap(space, vma.start)
    index.insert(master, shadow)
    assert not space.page_table.is_writable(vma.start)
    assert not space.page_table.is_dirty(vma.start)
