"""The Nomad policy: hint-fault pipeline, shadow faults, remap demotion,
shadow reclamation, ablation switches."""

import numpy as np
import pytest

from repro.core.nomad import NomadPolicy
from repro.mem.tiers import FAST_TIER, SLOW_TIER
from repro.mmu.faults import UnhandledFault
from repro.mmu.pte import PTE_PROT_NONE, PTE_SOFT_SHADOW_RW

from ..conftest import make_machine


def build(machine=None, **policy_kwargs):
    m = machine or make_machine()
    policy = NomadPolicy(m, **policy_kwargs)
    m.set_policy(policy)
    space = m.create_space()
    return m, policy, space


def slow_page(m, space, n=1):
    vma = space.mmap(n)
    m.populate(space, vma.vpns(), SLOW_TIER)
    return list(vma.vpns())


def touch(m, space, vpns, write=False):
    vpns = np.asarray(vpns, dtype=np.int64)
    writes = np.full(len(vpns), write, dtype=bool)
    return m.access.run_chunk(space, m.cpus.get("app0"), vpns, writes)


def arm(space, vpn):
    space.page_table.set_flags(vpn, PTE_PROT_NONE)


def advance(m, dt=200_000.0):
    """Advance simulated time (daemons keep the event queue non-empty)."""
    m.engine.run(until=m.engine.now + dt)


def test_hint_fault_unprotects_without_migrating():
    m, policy, space = build()
    (vpn,) = slow_page(m, space)
    arm(space, vpn)
    result = touch(m, space, [vpn])
    assert result.faults == 1
    assert not space.page_table.is_prot_none(vpn)
    # No migration happened on the critical path.
    assert m.stats.get("migrate.promotions") == 0
    assert m.tiers.tier_of(int(space.page_table.gpfn[vpn])) == SLOW_TIER


def test_one_fault_per_migration():
    """The Figure-4 property: after one hint fault plus a hardware
    re-touch, kpromote promotes the page with no further faults."""
    m, policy, space = build()
    (vpn,) = slow_page(m, space)
    arm(space, vpn)
    touch(m, space, [vpn])  # the only fault: enters the PCQ
    advance(m)
    touch(m, space, [vpn])  # hardware re-touch, a chunk later: no fault
    # Another page's fault triggers the PCQ scan.
    (other,) = slow_page(m, space)
    arm(space, other)
    touch(m, space, [other])
    m.engine.run(until=m.engine.now + 10_000_000)
    assert m.stats.get("fault.hint") == 2  # one per page
    assert m.tiers.tier_of(int(space.page_table.gpfn[vpn])) == FAST_TIER
    assert m.stats.get("nomad.tpm_commits") == 1


def test_untouched_candidate_is_not_promoted():
    m, policy, space = build()
    (vpn,) = slow_page(m, space)
    arm(space, vpn)
    touch(m, space, [vpn])  # the enqueueing fault is not reuse evidence
    advance(m)
    # Scan via another page's fault, with no re-touch of `vpn`.
    (other,) = slow_page(m, space)
    arm(space, other)
    touch(m, space, [other])
    m.engine.run(until=m.engine.now + 5_000_000)
    assert m.tiers.tier_of(int(space.page_table.gpfn[vpn])) == SLOW_TIER


def promote_page(m, policy, space, vpn):
    """Drive one page through the full Nomad promotion pipeline."""
    arm(space, vpn)
    touch(m, space, [vpn])
    advance(m)
    touch(m, space, [vpn])
    (helper,) = slow_page(m, space)
    arm(space, helper)
    touch(m, space, [helper])
    m.engine.run(until=m.engine.now + 10_000_000)
    assert m.tiers.tier_of(int(space.page_table.gpfn[vpn])) == FAST_TIER


def test_shadow_fault_restores_write_and_discards_shadow():
    m, policy, space = build()
    (vpn,) = slow_page(m, space)
    promote_page(m, policy, space, vpn)
    pt = space.page_table
    assert not pt.is_writable(vpn)
    assert policy.shadow_index.nr_shadows == 1
    result = touch(m, space, [vpn], write=True)
    assert result.faults == 1
    assert pt.is_writable(vpn)
    assert not pt.test_flags(vpn, PTE_SOFT_SHADOW_RW)
    assert policy.shadow_index.nr_shadows == 0
    assert m.stats.get("nomad.shadow_faults") == 1


def test_reads_on_master_take_no_fault():
    m, policy, space = build()
    (vpn,) = slow_page(m, space)
    promote_page(m, policy, space, vpn)
    result = touch(m, space, [vpn] * 10)
    assert result.faults == 0


def test_wp_fault_on_unshadowed_readonly_page_raises():
    m, policy, space = build()
    vma = space.mmap(1)
    m.populate(space, [vma.start], FAST_TIER, writable=False)
    with pytest.raises(UnhandledFault):
        touch(m, space, [vma.start], write=True)


def test_remap_demotion_needs_no_copy():
    m, policy, space = build()
    (vpn,) = slow_page(m, space)
    promote_page(m, policy, space, vpn)
    master = m.tiers.frame(int(space.page_table.gpfn[vpn]))
    copies_before = m.stats.get("migrate.sync_success")
    ok, cycles = policy.demote_page(master, m.cpus.get("kswapd0"))
    assert ok
    # Pure remap: no synchronous copy-migration happened.
    assert m.stats.get("migrate.sync_success") == copies_before
    assert m.stats.get("nomad.remap_demotions") == 1
    # Page is back on the slow tier with write permission restored.
    pt = space.page_table
    assert m.tiers.tier_of(int(pt.gpfn[vpn])) == SLOW_TIER
    assert pt.is_writable(vpn)
    # Cheaper than a copy demotion (which pays setup + allocation + the
    # page copy itself).
    copy_demotion = (
        m.costs.migrate_setup
        + m.costs.alloc_page
        + m.costs.page_copy_cycles(FAST_TIER, SLOW_TIER)
    )
    assert cycles < copy_demotion


def test_remap_demotion_frees_the_master_frame():
    m, policy, space = build()
    (vpn,) = slow_page(m, space)
    promote_page(m, policy, space, vpn)
    fast_free = m.tiers.fast.nr_free
    master = m.tiers.frame(int(space.page_table.gpfn[vpn]))
    policy.demote_page(master, m.cpus.get("kswapd0"))
    assert m.tiers.fast.nr_free == fast_free + 1
    assert policy.shadow_index.nr_shadows == 0


def test_demotion_of_unshadowed_page_copies():
    m, policy, space = build()
    vma = space.mmap(1)
    m.populate(space, [vma.start], FAST_TIER)
    frame = m.tiers.frame(int(space.page_table.gpfn[vma.start]))
    ok, _ = policy.demote_page(frame, m.cpus.get("kswapd0"))
    assert ok
    assert m.stats.get("nomad.copy_demotions") == 1


def test_reclaim_hint_frees_shadows_on_slow_node():
    m, policy, space = build()
    vpns = slow_page(m, space, 3)
    for vpn in vpns:
        promote_page(m, policy, space, vpn)
    assert policy.shadow_index.nr_shadows == 3
    freed, cycles = policy.reclaim_hint(SLOW_TIER, 2, m.cpus.get("kswapd1"))
    assert freed == 2
    assert policy.shadow_index.nr_shadows == 1
    # Fast node gets no shadow help (shadows live on the slow tier).
    assert policy.reclaim_hint(FAST_TIER, 2, m.cpus.get("kswapd0")) == (0, 0.0)


def test_alloc_fail_reclaims_10x():
    m, policy, space = build()
    vpns = slow_page(m, space, 15)
    for vpn in vpns:
        promote_page(m, policy, space, vpn)
    before = policy.shadow_index.nr_shadows
    assert before == 15
    freed = policy.on_alloc_fail(SLOW_TIER, 1)
    assert freed == 10  # 10x the request (Section 3.2)
    assert policy.shadow_index.nr_shadows == before - 10


def test_on_frame_replaced_rekeys_shadow():
    m, policy, space = build()
    (vpn,) = slow_page(m, space)
    promote_page(m, policy, space, vpn)
    master = m.tiers.frame(int(space.page_table.gpfn[vpn]))
    shadow = policy.shadow_index.lookup(master)
    from repro.kernel.migrate import sync_migrate_page

    result = sync_migrate_page(m, master, SLOW_TIER, m.cpus.get("c"), "demotion")
    assert result.success
    assert policy.shadow_index.lookup(result.new_frame) is shadow


def test_multimapped_page_falls_back_to_sync():
    m, policy, space = build()
    other = m.create_space("other")
    (vpn,) = slow_page(m, space)
    gpfn = int(space.page_table.gpfn[vpn])
    frame = m.tiers.frame(gpfn)
    ovma = other.mmap(1)
    other.page_table.map(ovma.start, gpfn, 0)
    frame.add_rmap(other, ovma.start)

    arm(space, vpn)
    touch(m, space, [vpn])
    advance(m)
    touch(m, space, [vpn])
    (helper,) = slow_page(m, space)
    arm(space, helper)
    touch(m, space, [helper])
    m.engine.run(until=m.engine.now + 10_000_000)
    assert m.stats.get("nomad.sync_fallbacks") == 1
    assert m.stats.get("nomad.tpm_commits") == 0
    assert m.tiers.tier_of(int(space.page_table.gpfn[vpn])) == FAST_TIER


def test_shadowing_disabled_ablation():
    m, policy, space = build(shadowing=False)
    (vpn,) = slow_page(m, space)
    promote_page(m, policy, space, vpn)
    assert policy.shadow_index.nr_shadows == 0
    assert space.page_table.is_writable(vpn)


def test_tpm_disabled_ablation_promotes_synchronously():
    m, policy, space = build(tpm=False)
    (vpn,) = slow_page(m, space)
    gpfn = int(space.page_table.gpfn[vpn])
    frame = m.tiers.frame(gpfn)
    m.lru.force_activate(frame)
    arm(space, vpn)
    touch(m, space, [vpn])
    # Promotion happened inside the fault, no kpromote involved.
    assert m.tiers.tier_of(int(space.page_table.gpfn[vpn])) == FAST_TIER
    assert m.stats.get("nomad.tpm_commits") == 0
    # Shadow still created by the shadow-aware sync path.
    assert policy.shadow_index.nr_shadows == 1
