"""Transactional page migration: the Figure-3 protocol."""

import pytest

from repro.core.queues import MigrationRequest
from repro.core.shadow import ShadowIndex
from repro.core.tpm import TpmOutcome, TransactionalMigrator
from repro.mem.frame import FrameFlags
from repro.mem.tiers import FAST_TIER, SLOW_TIER
from repro.mmu.pte import PTE_DIRTY, PTE_PRESENT, PTE_SOFT_SHADOW_RW

from ..conftest import make_machine


def setup(machine, shadowing=True):
    shadow_index = ShadowIndex(machine)
    migrator = TransactionalMigrator(machine, shadow_index, shadowing=shadowing)
    space = machine.create_space()
    vma = space.mmap(4)
    machine.populate(space, [vma.start], SLOW_TIER)
    gpfn = int(space.page_table.gpfn[vma.start])
    frame = machine.tiers.frame(gpfn)
    request = MigrationRequest(frame, space, vma.start, frame.generation)
    return migrator, shadow_index, space, vma.start, frame, request


def drive(machine, migrator, request, during=None):
    """Run one transaction on the engine; return its TpmResult."""
    out = {}
    cpu = machine.cpus.get("kpromote")

    def proc():
        result = yield from migrator.migrate(request, cpu)
        out["result"] = result

    machine.engine.spawn(proc(), "txn")
    if during is not None:
        machine.engine.spawn(during, "during")
    machine.engine.run(until=10_000_000)
    return out["result"]


def test_commit_moves_page_and_creates_shadow():
    m = make_machine()
    migrator, shadow_index, space, vpn, frame, request = setup(m)
    result = drive(m, migrator, request)
    assert result.outcome is TpmOutcome.COMMITTED
    new_gpfn = int(space.page_table.gpfn[vpn])
    assert m.tiers.tier_of(new_gpfn) == FAST_TIER
    # The old frame survives as the shadow copy.
    assert frame.is_shadow
    assert not frame.mapped
    assert not frame.on_lru
    assert shadow_index.lookup(result.new_frame) is frame
    assert result.new_frame.shadowed


def test_commit_write_protects_master_with_soft_bit():
    m = make_machine()
    migrator, _si, space, vpn, frame, request = setup(m)
    assert space.page_table.is_writable(vpn)
    drive(m, migrator, request)
    pt = space.page_table
    assert not pt.is_writable(vpn)
    assert pt.test_flags(vpn, PTE_SOFT_SHADOW_RW)
    assert pt.is_present(vpn)


def test_page_remains_accessible_during_copy():
    """The headline property: no prot_none/unmap before the copy ends."""
    m = make_machine()
    migrator, _si, space, vpn, frame, request = setup(m)
    observed = []

    def snooper():
        # Sample the PTE midway through the copy.
        yield 1500.0
        observed.append(bool(space.page_table.flags[vpn] & PTE_PRESENT))

    drive(m, migrator, request, during=snooper())
    assert observed == [True]


def test_store_during_copy_aborts():
    m = make_machine()
    migrator, shadow_index, space, vpn, frame, request = setup(m)
    pt = space.page_table

    def writer():
        yield 1500.0  # lands inside the copy window
        pt.set_flags(vpn, PTE_DIRTY)
        pt.last_write[vpn] = m.engine.now

    result = drive(m, migrator, request, during=writer())
    assert result.outcome is TpmOutcome.ABORTED_DIRTY
    # Original mapping restored verbatim, still on the slow tier.
    assert pt.is_present(vpn)
    assert m.tiers.tier_of(int(pt.gpfn[vpn])) == SLOW_TIER
    assert pt.is_writable(vpn)
    assert pt.is_dirty(vpn)
    # The allocated fast frame was released; no shadow created.
    assert m.tiers.fast.nr_free == m.tiers.fast.nr_pages
    assert shadow_index.nr_shadows == 0
    assert m.stats.get("nomad.tpm_aborts") == 1


def test_store_before_transaction_does_not_abort():
    m = make_machine()
    migrator, _si, space, vpn, frame, request = setup(m)
    pt = space.page_table
    pt.set_flags(vpn, PTE_DIRTY)
    pt.last_write[vpn] = -100.0  # dirtied long before the transaction
    # Step 1 clears the dirty bit; no store follows, so it commits.
    result = drive(m, migrator, request)
    assert result.outcome is TpmOutcome.COMMITTED


def test_nomem_fails_without_side_effects():
    m = make_machine()
    migrator, shadow_index, space, vpn, frame, request = setup(m)
    while m.tiers.fast.nr_free:
        m.tiers.alloc_on(FAST_TIER)
    result = drive(m, migrator, request)
    assert result.outcome is TpmOutcome.FAILED_NOMEM
    assert space.page_table.is_present(vpn)
    assert m.tiers.tier_of(int(space.page_table.gpfn[vpn])) == SLOW_TIER
    assert not frame.locked


def test_stale_request_skipped():
    m = make_machine()
    migrator, _si, space, vpn, frame, request = setup(m)
    request.generation -= 1  # frame was recycled since enqueue
    result = drive(m, migrator, request)
    assert result.outcome is TpmOutcome.FAILED_STALE


def test_fast_tier_page_is_stale():
    m = make_machine()
    migrator, _si, space, vpn, frame, request = setup(m)
    drive(m, migrator, request)
    # Second attempt on the (now fast-tier) mapping must be rejected.
    new_frame = m.tiers.frame(int(space.page_table.gpfn[vpn]))
    second = MigrationRequest(new_frame, space, vpn, new_frame.generation)
    result = drive(m, migrator, second)
    assert result.outcome is TpmOutcome.FAILED_STALE


def test_locked_page_is_busy():
    m = make_machine()
    migrator, _si, space, vpn, frame, request = setup(m)
    frame.set_flag(FrameFlags.LOCKED)
    result = drive(m, migrator, request)
    assert result.outcome is TpmOutcome.FAILED_BUSY
    frame.clear_flag(FrameFlags.LOCKED)


def test_tpm_without_shadowing_frees_source():
    m = make_machine()
    migrator, shadow_index, space, vpn, frame, request = setup(m, shadowing=False)
    result = drive(m, migrator, request)
    assert result.outcome is TpmOutcome.COMMITTED
    # Exclusive variant: old frame freed, master stays writable.
    assert m.tiers.slow.nr_free == m.tiers.slow.nr_pages
    assert shadow_index.nr_shadows == 0
    assert space.page_table.is_writable(vpn)


def test_two_shootdowns_per_committed_transaction():
    m = make_machine()
    migrator, _si, space, vpn, frame, request = setup(m)
    m.tlb_directory.note_access("app0", space.asid, vpn)
    before = m.stats.get("tlb.shootdowns")
    drive(m, migrator, request)
    assert m.stats.get("tlb.shootdowns") == before + 2


def test_cycles_accounted_to_kpromote():
    m = make_machine()
    migrator, _si, space, vpn, frame, request = setup(m)
    result = drive(m, migrator, request)
    breakdown = m.stats.breakdown("kpromote")
    assert breakdown.get("tpm_copy", 0) == pytest.approx(
        m.costs.page_copy_cycles(SLOW_TIER, FAST_TIER)
    )
    assert sum(breakdown.values()) == pytest.approx(result.cycles)


def test_read_only_page_master_has_no_soft_bit():
    m = make_machine()
    shadow_index = ShadowIndex(m)
    migrator = TransactionalMigrator(m, shadow_index)
    space = m.create_space()
    vma = space.mmap(1)
    m.populate(space, [vma.start], SLOW_TIER, writable=False)
    frame = m.tiers.frame(int(space.page_table.gpfn[vma.start]))
    request = MigrationRequest(frame, space, vma.start, frame.generation)
    result = drive(m, migrator, request)
    assert result.outcome is TpmOutcome.COMMITTED
    pt = space.page_table
    assert not pt.is_writable(vma.start)
    assert not pt.test_flags(vma.start, PTE_SOFT_SHADOW_RW)
