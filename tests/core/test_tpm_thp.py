"""Transactional migration of huge folios: the chunked-copy protocol.

Mirrors tests/core/test_tpm.py at PMD granularity. The properties under
test are the ones the chunked design exists for:

* the folio stays mapped during the whole copy; the original PMD is
  never cleared before commit, so an abort has nothing to restore;
* a store into *any* sub-page during the copy window is caught by the
  next chunk's dirty re-check (tracepoint reason ``chunk_dirty``), never
  by the engine-atomic final check (reason ``dirty``);
* after an abort the transaction can simply be retried.
"""

import pytest

from repro.core.queues import MigrationRequest
from repro.core.shadow import ShadowIndex
from repro.core.tpm import TpmOutcome, TransactionalMigrator
from repro.mem.tiers import FAST_TIER, SLOW_TIER
from repro.mmu.pte import PTE_DIRTY, PTE_SOFT_SHADOW_RW

from ..conftest import make_machine


def make_thp_machine(order=6):
    # Order 6 = 64 pages = two 32-page copy chunks on the default cost
    # model; a tiny tier (256 pages) still fits four folios.
    return make_machine(thp_enabled=True, thp_order=order)


def setup_folio(machine, shadowing=True):
    shadow_index = ShadowIndex(machine)
    migrator = TransactionalMigrator(machine, shadow_index, shadowing=shadowing)
    space = machine.create_space()
    fp = machine.folio_pages
    vma = space.mmap(fp, name="thp-area", thp=True)
    machine.populate(space, [vma.start], SLOW_TIER)
    head_vpn = vma.start
    pt = space.page_table
    assert pt.is_huge(head_vpn)
    frame = machine.tiers.frame(int(pt.gpfn[head_vpn]))
    assert frame.is_huge and not frame.is_tail
    request = MigrationRequest(frame, space, head_vpn, frame.generation)
    return migrator, shadow_index, space, head_vpn, frame, request


def drive(machine, migrator, request, during=None):
    out = {}
    cpu = machine.cpus.get("kpromote")

    def proc():
        result = yield from migrator.migrate(request, cpu)
        out["result"] = result

    machine.engine.spawn(proc(), "txn")
    if during is not None:
        machine.engine.spawn(during, "during")
    machine.engine.run(until=50_000_000)
    return out["result"]


def copy_window(machine):
    """(start, chunk_cycles) of the chunked copy, from the cost model."""
    costs = machine.costs
    start = (
        costs.migrate_setup
        + costs.pmd_update
        + costs.tlb_flush_local
        + costs.alloc_page
    )
    chunk = costs.folio_copy_cycles(SLOW_TIER, FAST_TIER, costs.thp_chunk_pages)
    return start, chunk


def abort_reasons(machine):
    return [
        r.args["reason"]
        for r in machine.obs.ring.records()
        if r.name == "tpm.abort"
    ]


def test_folio_commit_moves_whole_folio_and_creates_shadow():
    m = make_thp_machine()
    migrator, shadow_index, space, vpn, frame, request = setup_folio(m)
    fp = m.folio_pages
    result = drive(m, migrator, request)
    assert result.outcome is TpmOutcome.COMMITTED
    pt = space.page_table
    for off in range(fp):
        assert m.tiers.tier_of(int(pt.gpfn[vpn + off])) == FAST_TIER
        assert pt.is_huge(vpn + off)
    # The whole slow folio survives as one shadow.
    assert frame.is_shadow and frame.is_huge
    assert shadow_index.lookup(result.new_frame) is frame
    assert shadow_index.nr_shadow_pages == fp
    assert m.stats.get("thp.folio_promotions") == 1
    assert m.stats.get("migrate.promotions") == 1  # one *event* per folio


def test_folio_commit_write_protects_every_subpage():
    m = make_thp_machine()
    migrator, _si, space, vpn, frame, request = setup_folio(m)
    drive(m, migrator, request)
    pt = space.page_table
    for off in range(m.folio_pages):
        assert not pt.is_writable(vpn + off)
        assert pt.test_flags(vpn + off, PTE_SOFT_SHADOW_RW)


def test_folio_stays_mapped_during_chunked_copy():
    m = make_thp_machine()
    migrator, _si, space, vpn, frame, request = setup_folio(m)
    start, chunk = copy_window(m)
    observed = []

    def snooper():
        # Midway through the second chunk's copy.
        yield start + chunk + m.costs.thp_chunk_check + chunk / 2
        pt = space.page_table
        observed.append(
            all(pt.is_present(vpn + off) for off in range(m.folio_pages))
        )

    drive(m, migrator, request, during=snooper())
    assert observed == [True]


@pytest.mark.parametrize("sub_page", [0, 17, 63])
def test_store_into_any_subpage_during_copy_aborts_via_chunk_check(sub_page):
    m = make_thp_machine()
    m.obs.enable(sample_period=None)
    migrator, shadow_index, space, vpn, frame, request = setup_folio(m)
    pt = space.page_table
    start, chunk = copy_window(m)

    def writer():
        yield start + chunk / 2  # inside the first chunk's copy
        pt.set_flags(vpn + sub_page, PTE_DIRTY)
        pt.last_write[vpn + sub_page] = m.engine.now

    result = drive(m, migrator, request, during=writer())
    assert result.outcome is TpmOutcome.ABORTED_DIRTY
    # The PMD was never cleared: the original mapping is fully intact.
    for off in range(m.folio_pages):
        assert pt.is_present(vpn + off)
        assert pt.is_huge(vpn + off)
        assert m.tiers.tier_of(int(pt.gpfn[vpn + off])) == SLOW_TIER
    assert pt.is_writable(vpn)
    # The destination folio was released; no shadow came to exist.
    assert m.tiers.fast.nr_free == m.tiers.fast.nr_pages
    assert shadow_index.nr_shadows == 0
    assert m.stats.get("nomad.tpm_aborts") == 1
    assert m.stats.get("nomad.tpm_chunk_aborts") == 1
    # Tracepoint-asserted: the abort came from the chunk re-check path,
    # never from the engine-atomic final dirty check.
    assert abort_reasons(m) == ["chunk_dirty"]


def test_store_in_later_chunk_window_caught_by_that_chunk():
    m = make_thp_machine(order=7)  # 128 pages -> four 32-page chunks
    m.obs.enable(sample_period=None)
    migrator, _si, space, vpn, frame, request = setup_folio(m)
    pt = space.page_table
    start, chunk = copy_window(m)
    check = m.costs.thp_chunk_check

    def writer():
        # Inside chunk 1's copy slice (after chunk 0's copy + re-check).
        yield start + chunk + check + chunk / 2
        pt.set_flags(vpn + 100, PTE_DIRTY)
        pt.last_write[vpn + 100] = m.engine.now

    result = drive(m, migrator, request, during=writer())
    assert result.outcome is TpmOutcome.ABORTED_DIRTY
    chunks = [r for r in m.obs.ring.records() if r.name == "tpm.chunk"]
    # Chunk 0 passed its re-check; chunk 1 observed the store; chunks
    # 2 and 3 were never copied.
    assert [c.args["dirty"] for c in chunks] == [False, True]
    assert abort_reasons(m) == ["chunk_dirty"]


def test_abort_then_retry_commits():
    m = make_thp_machine()
    migrator, shadow_index, space, vpn, frame, request = setup_folio(m)
    pt = space.page_table
    start, chunk = copy_window(m)

    def writer():
        yield start + chunk / 2
        pt.set_flags(vpn, PTE_DIRTY)
        pt.last_write[vpn] = m.engine.now

    first = drive(m, migrator, request, during=writer())
    assert first.outcome is TpmOutcome.ABORTED_DIRTY
    # No store races the retry: the re-opened transaction commits.
    retry = MigrationRequest(frame, space, vpn, frame.generation)
    second = drive(m, migrator, retry)
    assert second.outcome is TpmOutcome.COMMITTED
    assert shadow_index.nr_shadow_pages == m.folio_pages
    assert m.stats.get("nomad.tpm_aborts") == 1
    assert m.stats.get("nomad.tpm_commits") == 1


def test_store_before_transaction_does_not_abort():
    m = make_thp_machine()
    migrator, _si, space, vpn, frame, request = setup_folio(m)
    pt = space.page_table
    pt.set_flags(vpn + 5, PTE_DIRTY)
    pt.last_write[vpn + 5] = -100.0
    result = drive(m, migrator, request)
    assert result.outcome is TpmOutcome.COMMITTED


def test_folio_nomem_fails_without_side_effects():
    m = make_thp_machine()
    migrator, _si, space, vpn, frame, request = setup_folio(m)
    while m.tiers.fast.nr_free:
        m.tiers.alloc_on(FAST_TIER)
    result = drive(m, migrator, request)
    assert result.outcome is TpmOutcome.FAILED_NOMEM
    pt = space.page_table
    assert pt.is_present(vpn) and pt.is_huge(vpn)
    assert m.tiers.tier_of(int(pt.gpfn[vpn])) == SLOW_TIER
    assert not frame.locked


def test_folio_without_shadowing_frees_source_folio():
    m = make_thp_machine()
    migrator, shadow_index, space, vpn, frame, request = setup_folio(
        m, shadowing=False
    )
    result = drive(m, migrator, request)
    assert result.outcome is TpmOutcome.COMMITTED
    assert m.tiers.slow.nr_free == m.tiers.slow.nr_pages
    assert shadow_index.nr_shadows == 0
    assert space.page_table.is_writable(vpn)


def test_folio_transaction_needs_two_shootdowns():
    m = make_thp_machine()
    migrator, _si, space, vpn, frame, request = setup_folio(m)
    before = m.stats.get("tlb.shootdowns")
    drive(m, migrator, request)
    # One PMD entry to shoot down at open and one at commit -- not one
    # per sub-page.
    assert m.stats.get("tlb.shootdowns") == before + 2
