"""kpromote: the background promotion daemon."""

from repro.core.nomad import NomadPolicy
from repro.mem.tiers import FAST_TIER, SLOW_TIER

from ..conftest import make_machine


def build():
    m = make_machine()
    policy = NomadPolicy(m)
    m.set_policy(policy)
    space = m.create_space()
    return m, policy, space


def enqueue_directly(m, policy, space, vpn):
    """Bypass the PCQ and hand a request straight to the MPQ."""
    from repro.core.queues import MigrationRequest

    gpfn = int(space.page_table.gpfn[vpn])
    frame = m.tiers.frame(gpfn)
    request = MigrationRequest(frame, space, vpn, frame.generation)
    assert policy.mpq.push(request)
    policy.kpromote.wake()
    return frame, request


def test_daemon_drains_queue():
    m, policy, space = build()
    vma = space.mmap(4)
    m.populate(space, vma.vpns(), SLOW_TIER)
    for vpn in vma.vpns():
        enqueue_directly(m, policy, space, vpn)
    m.engine.run(until=10_000_000)
    assert len(policy.mpq) == 0
    assert m.stats.get("nomad.tpm_commits") == 4
    pt = space.page_table
    for vpn in vma.vpns():
        assert m.tiers.tier_of(int(pt.gpfn[vpn])) == FAST_TIER


def test_daemon_sleeps_when_idle():
    m, policy, space = build()
    m.engine.run(until=1_000_000)
    # No work, no cycles burned.
    assert m.stats.breakdown("kpromote") == {}


def test_stale_requests_are_skipped():
    m, policy, space = build()
    vma = space.mmap(1)
    m.populate(space, [vma.start], SLOW_TIER)
    frame, request = enqueue_directly(m, policy, space, vma.start)
    request.generation -= 1
    m.engine.run(until=1_000_000)
    assert m.stats.get("nomad.kpromote_stale") == 1
    assert m.stats.get("nomad.tpm_commits") == 0


def test_nomem_requeues_with_bounded_attempts():
    m, policy, space = build()
    vma = space.mmap(1)
    m.populate(space, [vma.start], SLOW_TIER)
    while m.tiers.fast.nr_free:
        m.tiers.alloc_on(FAST_TIER)
    enqueue_directly(m, policy, space, vma.start)
    m.engine.run(until=20_000_000)
    # The transaction failed on allocation and was retried until the
    # attempt bound, then dropped.
    assert m.stats.get("nomad.tpm_nomem") >= 1
    assert len(policy.mpq) == 0


def test_work_runs_on_kpromote_core_not_app():
    m, policy, space = build()
    vma = space.mmap(2)
    m.populate(space, vma.vpns(), SLOW_TIER)
    for vpn in vma.vpns():
        enqueue_directly(m, policy, space, vpn)
    m.engine.run(until=10_000_000)
    kp = m.stats.breakdown("kpromote")
    assert sum(kp.values()) > 0
    assert "tpm_copy" in kp
    app = m.stats.breakdown("app0")
    assert "tpm_copy" not in app and "tpm" not in app
