"""PCQ and MPQ semantics."""

import pytest

from repro.core.queues import (
    MigrationPendingQueue,
    MigrationRequest,
    PromotionCandidateQueue,
)
from repro.mem.frame import Frame
from repro.mmu.address_space import AddressSpace


def request(pfn=0, vpn=0):
    frame = Frame(pfn, 1)
    space = AddressSpace(16)
    frame.add_rmap(space, vpn)
    return MigrationRequest(frame, space, vpn, frame.generation)


def test_pcq_push_and_membership():
    pcq = PromotionCandidateQueue(4)
    req = request()
    pcq.push(req)
    assert len(pcq) == 1
    assert req.frame in pcq


def test_pcq_duplicate_push_ignored():
    pcq = PromotionCandidateQueue(4)
    req = request()
    pcq.push(req)
    pcq.push(MigrationRequest(req.frame, req.space, req.vpn, req.generation))
    assert len(pcq) == 1


def test_pcq_capacity_evicts_oldest():
    pcq = PromotionCandidateQueue(2)
    reqs = [request(pfn=i) for i in range(3)]
    for req in reqs:
        pcq.push(req)
    assert len(pcq) == 2
    assert reqs[0].frame not in pcq
    assert reqs[2].frame in pcq


def test_pcq_scan_hot_pops_hot_keeps_cold():
    pcq = PromotionCandidateQueue(8)
    hot_req = request(pfn=1)
    cold_req = request(pfn=2)
    pcq.push(hot_req)
    pcq.push(cold_req)
    hot = pcq.scan_hot(lambda r: r is hot_req, limit=8)
    assert hot == [hot_req]
    assert len(pcq) == 1
    assert cold_req.frame in pcq


def test_pcq_scan_respects_limit():
    pcq = PromotionCandidateQueue(16)
    reqs = [request(pfn=i) for i in range(10)]
    for req in reqs:
        pcq.push(req)
    hot = pcq.scan_hot(lambda r: True, limit=3)
    assert len(hot) == 3
    assert len(pcq) == 7


def test_pcq_scan_drops_stale_requests():
    pcq = PromotionCandidateQueue(8)
    req = request()
    pcq.push(req)
    req.frame.remove_rmap(req.space, req.vpn)  # freed concurrently
    hot = pcq.scan_hot(lambda r: True, limit=8)
    assert hot == []
    assert len(pcq) == 0


def test_pcq_scan_drops_reallocated_frames():
    pcq = PromotionCandidateQueue(8)
    req = request()
    pcq.push(req)
    req.frame.remove_rmap(req.space, req.vpn)
    req.frame.reset()  # generation bump
    req.frame.add_rmap(req.space, req.vpn)
    hot = pcq.scan_hot(lambda r: True, limit=8)
    assert hot == []


def test_pcq_discard():
    pcq = PromotionCandidateQueue(8)
    req = request()
    pcq.push(req)
    pcq.discard(req.frame)
    assert len(pcq) == 0
    pcq.discard(req.frame)  # idempotent


def test_pcq_invalid_capacity():
    with pytest.raises(ValueError):
        PromotionCandidateQueue(0)


def test_mpq_fifo():
    mpq = MigrationPendingQueue()
    reqs = [request(pfn=i) for i in range(3)]
    for req in reqs:
        assert mpq.push(req)
    assert mpq.pop() is reqs[0]
    assert mpq.pop() is reqs[1]
    assert len(mpq) == 1


def test_mpq_duplicate_rejected():
    mpq = MigrationPendingQueue()
    req = request()
    assert mpq.push(req)
    assert not mpq.push(req)


def test_mpq_capacity():
    mpq = MigrationPendingQueue(capacity=2)
    for i in range(3):
        mpq.push(request(pfn=i))
    assert len(mpq) == 2
    assert mpq.dropped == 1


def test_mpq_pop_empty():
    assert MigrationPendingQueue().pop() is None


def test_mpq_retry_bounded():
    mpq = MigrationPendingQueue(max_attempts=3)
    req = request()
    assert mpq.retry(req)  # attempt 1
    mpq.pop()
    assert mpq.retry(req)  # attempt 2
    mpq.pop()
    assert not mpq.retry(req)  # attempt 3 -> dropped
    assert mpq.dropped == 1
    assert len(mpq) == 0
