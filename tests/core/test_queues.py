"""PCQ and MPQ semantics."""

import pytest

from repro.core.queues import (
    MigrationPendingQueue,
    MigrationRequest,
    PromotionCandidateQueue,
)
from repro.mem.frame import Frame
from repro.mmu.address_space import AddressSpace


def request(pfn=0, vpn=0):
    frame = Frame(pfn, 1)
    space = AddressSpace(16)
    frame.add_rmap(space, vpn)
    return MigrationRequest(frame, space, vpn, frame.generation)


def test_pcq_push_and_membership():
    pcq = PromotionCandidateQueue(4)
    req = request()
    pcq.push(req)
    assert len(pcq) == 1
    assert req.frame in pcq


def test_pcq_duplicate_push_ignored():
    pcq = PromotionCandidateQueue(4)
    req = request()
    pcq.push(req)
    pcq.push(MigrationRequest(req.frame, req.space, req.vpn, req.generation))
    assert len(pcq) == 1


def test_pcq_capacity_evicts_oldest():
    pcq = PromotionCandidateQueue(2)
    reqs = [request(pfn=i) for i in range(3)]
    for req in reqs:
        pcq.push(req)
    assert len(pcq) == 2
    assert reqs[0].frame not in pcq
    assert reqs[2].frame in pcq


def test_pcq_scan_hot_pops_hot_keeps_cold():
    pcq = PromotionCandidateQueue(8)
    hot_req = request(pfn=1)
    cold_req = request(pfn=2)
    pcq.push(hot_req)
    pcq.push(cold_req)
    hot = pcq.scan_hot(lambda r: r is hot_req, limit=8)
    assert hot == [hot_req]
    assert len(pcq) == 1
    assert cold_req.frame in pcq


def test_pcq_scan_respects_limit():
    pcq = PromotionCandidateQueue(16)
    reqs = [request(pfn=i) for i in range(10)]
    for req in reqs:
        pcq.push(req)
    hot = pcq.scan_hot(lambda r: True, limit=3)
    assert len(hot) == 3
    assert len(pcq) == 7


def test_pcq_scan_drops_stale_requests():
    pcq = PromotionCandidateQueue(8)
    req = request()
    pcq.push(req)
    req.frame.remove_rmap(req.space, req.vpn)  # freed concurrently
    hot = pcq.scan_hot(lambda r: True, limit=8)
    assert hot == []
    assert len(pcq) == 0


def test_pcq_scan_drops_reallocated_frames():
    pcq = PromotionCandidateQueue(8)
    req = request()
    pcq.push(req)
    req.frame.remove_rmap(req.space, req.vpn)
    req.frame.reset()  # generation bump
    req.frame.add_rmap(req.space, req.vpn)
    hot = pcq.scan_hot(lambda r: True, limit=8)
    assert hot == []


def test_pcq_discard():
    pcq = PromotionCandidateQueue(8)
    req = request()
    pcq.push(req)
    pcq.discard(req.frame)
    assert len(pcq) == 0
    pcq.discard(req.frame)  # idempotent


def test_pcq_invalid_capacity():
    with pytest.raises(ValueError):
        PromotionCandidateQueue(0)


def test_mpq_fifo():
    mpq = MigrationPendingQueue()
    reqs = [request(pfn=i) for i in range(3)]
    for req in reqs:
        assert mpq.push(req)
    assert mpq.pop() is reqs[0]
    assert mpq.pop() is reqs[1]
    assert len(mpq) == 1


def test_mpq_duplicate_rejected():
    mpq = MigrationPendingQueue()
    req = request()
    assert mpq.push(req)
    assert not mpq.push(req)


def test_mpq_capacity():
    mpq = MigrationPendingQueue(capacity=2)
    for i in range(3):
        mpq.push(request(pfn=i))
    assert len(mpq) == 2
    assert mpq.dropped == 1


def test_mpq_pop_empty():
    assert MigrationPendingQueue().pop() is None


def test_mpq_retry_bounded():
    mpq = MigrationPendingQueue(max_attempts=3)
    req = request()
    assert mpq.retry(req)  # attempt 1
    mpq.pop()
    assert mpq.retry(req)  # attempt 2
    mpq.pop()
    assert not mpq.retry(req)  # attempt 3 -> dropped
    assert mpq.dropped == 1
    assert len(mpq) == 0


# ----------------------------------------------------------------------
# Edge cases with tracepoints: the drop/evict paths must both return
# the documented value AND tell the trace stream why.
# ----------------------------------------------------------------------
def traced_obs():
    """An enabled ObsManager on a minimal machine-shaped host."""
    from types import SimpleNamespace

    from repro.obs.tracepoints import ObsManager

    host = SimpleNamespace(engine=SimpleNamespace(now=0.0))
    return ObsManager(host).enable(sample_period=None)


def test_mpq_retry_into_full_queue_drops_as_full():
    # An aborted transaction with attempts to spare retries into a queue
    # that filled up meanwhile: the re-push fails as a capacity drop,
    # not a retry exhaustion, and the tracepoint says so.
    obs = traced_obs()
    mpq = MigrationPendingQueue(capacity=1, max_attempts=4, obs=obs)
    blocker = request(pfn=1)
    assert mpq.push(blocker)
    victim = request(pfn=2, vpn=7)
    assert not mpq.retry(victim)
    assert victim.attempts == 1  # attempt was consumed by the retry
    assert mpq.dropped == 1
    drops = obs.select("mpq.drop")
    assert len(drops) == 1
    assert drops[0].args == {"vpn": 7, "reason": "full", "depth": 1}
    # The queue itself is untouched by the failed retry.
    assert len(mpq) == 1 and blocker.frame in mpq


def test_mpq_retry_exhaustion_traces_max_attempts():
    obs = traced_obs()
    mpq = MigrationPendingQueue(max_attempts=2, obs=obs)
    req = request(vpn=9)
    assert mpq.retry(req)  # attempt 1: requeued (and traced)
    mpq.pop()
    assert not mpq.retry(req)  # attempt 2: dropped
    retries = obs.select("mpq.retry")
    assert [r.args["attempts"] for r in retries] == [1]
    drops = obs.select("mpq.drop")
    assert len(drops) == 1
    assert drops[0].args["reason"] == "max_attempts"
    assert drops[0].args["vpn"] == 9


def test_pcq_push_returns_evicted_request_and_traces_it():
    obs = traced_obs()
    pcq = PromotionCandidateQueue(capacity=2, obs=obs)
    oldest = request(pfn=1, vpn=11)
    pcq.push(oldest)
    assert pcq.push(request(pfn=2)) is None  # room left: nothing evicted
    evicted = pcq.push(request(pfn=3))
    assert evicted is oldest
    assert oldest.frame not in pcq and len(pcq) == 2
    evts = obs.select("pcq.evict")
    assert len(evts) == 1
    assert evts[0].args["vpn"] == 11


def test_pcq_duplicate_push_never_evicts():
    # Re-pushing a queued frame at capacity must be a no-op, not an
    # eviction of somebody else.
    pcq = PromotionCandidateQueue(capacity=2)
    a, b = request(pfn=1), request(pfn=2)
    pcq.push(a)
    pcq.push(b)
    assert pcq.push(MigrationRequest(a.frame, a.space, a.vpn, a.generation)) is None
    assert a.frame in pcq and b.frame in pcq
