"""Failure injection: exhaustion, broken policies, daemon crashes.

The machine must fail loudly and leave consistent state -- never limp
along with corrupted page tables or leaked frames.
"""

import numpy as np
import pytest

from repro import Machine, MachineConfig, OutOfMemoryError
from repro.mem.tiers import SLOW_TIER
from repro.policies import make_policy
from repro.policies.base import TieringPolicy
from repro.workloads import SeqScanWorkload, ZipfianMicrobench

from ..conftest import tiny_platform
from .invariants import check_invariants


def build(policy=None, fast_gb=1.0, slow_gb=1.0):
    machine = Machine(
        tiny_platform(fast_gb=fast_gb, slow_gb=slow_gb),
        MachineConfig(chunk_size=32),
    )
    if policy is not None:
        machine.set_policy(make_policy(policy, machine))
    return machine


def test_oom_raises_cleanly_without_migration_relief():
    """An RSS beyond total capacity OOMs under no-migration; the machine
    state stays consistent afterwards."""
    machine = build("no-migration")
    workload = SeqScanWorkload(rss_gb=2.5, total_accesses=100_000)
    with pytest.raises(OutOfMemoryError):
        machine.run_workload(workload)
    check_invariants(machine)
    # Every frame is either free or mapped; none leaked mid-allocation.
    for node in machine.tiers.nodes:
        assert node.nr_free + node.nr_used == node.nr_pages


def test_nomad_survives_where_no_migration_ooms_is_not_expected():
    """Shadow reclamation helps only with shadow pressure -- a genuinely
    oversized RSS still OOMs under Nomad too (shadows cannot conjure
    capacity)."""
    machine = build("nomad")
    workload = SeqScanWorkload(rss_gb=2.5, total_accesses=100_000)
    with pytest.raises(OutOfMemoryError):
        machine.run_workload(workload)
    check_invariants(machine)


def test_policy_exception_propagates_with_state_intact():
    class Exploding(TieringPolicy):
        name = "exploding"

        def install(self):
            super().install()
            self.machine.start_numa_scanner()

        def handle_hint_fault(self, fault, cpu):
            raise RuntimeError("injected failure")

    machine = build()
    machine.set_policy(Exploding(machine))
    space = machine.create_space()
    vma = space.mmap(4)
    machine.populate(space, vma.vpns(), SLOW_TIER)
    from repro.mmu.pte import PTE_PROT_NONE

    space.page_table.set_flags(vma.start, PTE_PROT_NONE)
    with pytest.raises(RuntimeError, match="injected failure"):
        machine.access.run_chunk(
            space,
            machine.cpus.get("app0"),
            np.array([vma.start], dtype=np.int64),
            np.array([False]),
        )
    check_invariants(machine)


def test_daemon_crash_surfaces_from_run_workload():
    machine = build("no-migration")

    def broken_daemon():
        yield 1_000.0
        raise ValueError("daemon died")

    machine.engine.spawn(broken_daemon(), "broken")
    workload = SeqScanWorkload(rss_gb=0.5, total_accesses=50_000)
    with pytest.raises(ValueError, match="daemon died"):
        machine.run_workload(workload)


def test_kpromote_crash_mid_transaction_releases_lock():
    """Killing kpromote mid-copy must not leave the page locked forever
    (the generator's finally clause unlocks)."""
    from repro.core.queues import MigrationRequest

    machine = build("nomad")
    policy = machine.policy
    space = machine.create_space()
    vma = space.mmap(1)
    machine.populate(space, [vma.start], SLOW_TIER)
    frame = machine.tiers.frame(int(space.page_table.gpfn[vma.start]))
    policy.mpq.push(MigrationRequest(frame, space, vma.start, frame.generation))
    policy.kpromote.wake()
    # Run just far enough for the transaction to start (copy in flight).
    machine.engine.run(until=2_000)
    assert frame.locked, "transaction should be mid-flight"
    machine.engine.kill(policy.kpromote.proc)
    assert not frame.locked
    # The page is still mapped on the slow tier and usable.
    assert space.page_table.is_present(vma.start)
    result = machine.access.run_chunk(
        space,
        machine.cpus.get("app0"),
        np.array([vma.start], dtype=np.int64),
        np.array([True]),
    )
    assert result.writes == 1


def test_workload_touching_unmapped_range_demand_pages():
    """A stray access outside any populated range is not an error --
    demand paging maps it (first-touch), like a real anonymous mmap."""
    machine = build("no-migration")
    space = machine.create_space()
    vma = space.mmap(16)
    result = machine.access.run_chunk(
        space,
        machine.cpus.get("app0"),
        np.asarray(list(vma.vpns()), dtype=np.int64),
        np.zeros(16, dtype=bool),
    )
    assert result.faults == 16
    assert space.rss_pages == 16


def test_interrupted_run_can_be_resumed():
    """run_cycles acts as a checkpointed pause: a second call finishes
    the remaining work."""
    machine = build("tpp", fast_gb=2.0, slow_gb=2.0)
    workload = ZipfianMicrobench(
        wss_gb=1.0, rss_gb=1.0, total_accesses=30_000
    )
    first = machine.run_workload(workload, run_cycles=1_000_000)
    assert first.overall.accesses < 30_000
    # Resume: keep running the engine (the application process is still
    # alive) until the workload completes.
    while not workload.finished:
        machine.engine.run(max_events=20_000)
    check_invariants(machine)
