"""End-to-end behaviour of a DRAM/CXL/SSD-class three-tier chain.

The cascade property the N-tier generalization exists for: pressure on
tier 0 demotes pages into tier 1, which pushes tier 1 below its own low
watermark, whose kswapd then demotes into tier 2 -- all visible in the
per-tier ``migrate.demote_to_tier<N>`` counters that only deep chains
maintain.
"""

import json
from pathlib import Path

import pytest

from repro import Machine, MachineConfig
from repro.bench.runner import run_experiment
from repro.obs.export import counter_digest
from repro.policies import make_policy
from repro.sim.platform import three_tier
from repro.workloads import ZipfianMicrobench

from ..conftest import tiny_platform

BASELINE = Path(__file__).resolve().parents[2] / "benchmarks/baselines/quick.json"
THREE_TIER_JOB_ID = "cell/A/nomad/small/w1/a20000/s42/3tier"


def make_machine3(fast_gb=0.5, slow_gb=0.5, ssd_gb=1.0):
    return Machine(
        three_tier(tiny_platform(fast_gb=fast_gb, slow_gb=slow_gb), ssd_gb),
        MachineConfig(chunk_size=64),
    )


def fill_tier(machine, space, tier, leave_free=0):
    """Map cold pages on ``tier`` until only ``leave_free`` frames remain."""
    count = machine.tiers.nodes[tier].nr_free - leave_free
    vma = space.mmap(count)
    machine.populate(space, vma.vpns(), tier)
    return vma


def test_tier0_pressure_cascades_to_the_bottom_tier():
    m = make_machine3()
    m.set_policy(make_policy("tpp", m))
    space = m.create_space()
    # Tier 1 sits just above its low watermark: its kswapd is asleep
    # until tier-0 demotions land on it.
    tier1 = m.tiers.nodes[1]
    fill_tier(m, space, 1, leave_free=tier1.wmark_low)
    fill_tier(m, space, 0)
    assert m.tiers.nodes[2].nr_used == 0
    m.kswapd[0].wake()
    m.engine.run(until=100_000_000)
    # The ripple: tier-0 demotions landed on tier 1, and tier 1's own
    # kswapd pushed pages onward to the SSD-class tier.
    assert m.stats.get("migrate.demote_to_tier1") > 0
    assert m.stats.get("migrate.demote_to_tier2") > 0
    assert m.tiers.nodes[2].nr_used > 0
    assert m.tiers.nodes[0].nr_free >= m.tiers.nodes[0].wmark_high
    # Totals stay consistent with the per-tier split.
    assert m.stats.get("migrate.demotions") == (
        m.stats.get("migrate.demote_to_tier1")
        + m.stats.get("migrate.demote_to_tier2")
    )


def test_bottom_tier_has_nowhere_to_demote():
    m = make_machine3(ssd_gb=0.25)
    m.set_policy(make_policy("tpp", m))
    space = m.create_space()
    fill_tier(m, space, 2)
    m.kswapd[2].wake()
    m.engine.run(until=20_000_000)
    assert m.stats.get("migrate.demotions") == 0
    assert m.tiers.nodes[2].nr_free == 0


def test_two_tier_machines_carry_no_per_tier_counters():
    """Legacy machines must not grow new counter keys (digest identity)."""
    m = Machine(tiny_platform(), MachineConfig(chunk_size=64))
    m.set_policy(make_policy("tpp", m))
    space = m.create_space()
    fill_tier(m, space, 0)
    m.kswapd[0].wake()
    m.engine.run(until=50_000_000)
    assert m.stats.get("migrate.demotions") > 0
    assert "migrate.demote_to_tier1" not in m.stats.counters


@pytest.fixture(scope="module")
def three_tier_baseline_job():
    report = json.loads(BASELINE.read_text())
    jobs = {job["id"]: job for job in report["jobs"]}
    assert THREE_TIER_JOB_ID in jobs, (
        f"quick baseline lost its 3-tier anchor job {THREE_TIER_JOB_ID}"
    )
    return jobs[THREE_TIER_JOB_ID]


def test_three_tier_cell_matches_committed_baseline(three_tier_baseline_job):
    """The pinned 3-tier quick cell is bit-identical run-to-run."""
    result = run_experiment(
        "A",
        "nomad",
        lambda: ZipfianMicrobench.scenario(
            "small", write_ratio=1.0, total_accesses=20_000, seed=42
        ),
        instrument=True,
        topology="3tier",
    )
    assert result.report.cycles == three_tier_baseline_job["sim_cycles"]
    digest = counter_digest(result.report.counters)
    assert digest == three_tier_baseline_job["counter_digest"]
