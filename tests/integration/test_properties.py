"""Property-based tests: machine invariants hold for arbitrary
workload/policy combinations, and core data structures behave like their
mathematical models."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Machine, MachineConfig
from repro.policies import make_policy
from repro.workloads import Workload

from ..conftest import tiny_platform
from .invariants import check_invariants


class RandomTraceWorkload(Workload):
    """A hypothesis-driven workload: arbitrary vpn/write trace over a
    mixed fast/slow layout."""

    name = "random-trace"

    def __init__(self, nr_pages, fast_fraction, trace, seed=0):
        super().__init__(total_accesses=max(1, len(trace)), seed=seed)
        self.nr_pages = nr_pages
        self.fast_fraction = fast_fraction
        self.trace = trace
        self._pos = 0
        self._start = 0

    def setup(self):
        from repro.mem.tiers import FAST_TIER, SLOW_TIER

        vma = self.space.mmap(self.nr_pages)
        self._start = vma.start
        vpns = np.asarray(list(vma.vpns()))
        split = int(self.nr_pages * self.fast_fraction)
        self.machine.populate(self.space, vpns[:split], FAST_TIER)
        self.machine.populate(self.space, vpns[split:], SLOW_TIER)

    def generate(self, n):
        chunk = self.trace[self._pos : self._pos + n]
        self._pos += n
        if not chunk:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
        vpns = np.array(
            [self._start + (v % self.nr_pages) for v, _ in chunk], dtype=np.int64
        )
        writes = np.array([w for _, w in chunk], dtype=bool)
        return vpns, writes


trace_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=10_000), st.booleans()),
    min_size=1,
    max_size=800,
)


@settings(max_examples=20, deadline=None)
@given(
    policy=st.sampled_from(["no-migration", "tpp", "memtis-default", "nomad"]),
    nr_pages=st.integers(min_value=4, max_value=700),
    fast_fraction=st.floats(min_value=0.0, max_value=1.0),
    trace=trace_strategy,
)
def test_invariants_hold_for_random_traces(policy, nr_pages, fast_fraction, trace):
    machine = Machine(
        tiny_platform(fast_gb=1.0, slow_gb=2.0), MachineConfig(chunk_size=32)
    )
    machine.set_policy(make_policy(policy, machine))
    workload = RandomTraceWorkload(nr_pages, fast_fraction, trace)
    report = machine.run_workload(workload)
    assert report.overall.accesses == len(trace)
    check_invariants(machine)
    # Conservation: pages mapped == pages populated (no leaks, no loss).
    assert workload.space.rss_pages == nr_pages


@settings(max_examples=20, deadline=None)
@given(
    trace=trace_strategy,
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_nomad_shadow_conservation(trace, seed):
    """Frames are conserved: used + free == total on every node, with
    shadows counted as used slow-tier frames."""
    machine = Machine(
        tiny_platform(fast_gb=1.0, slow_gb=2.0), MachineConfig(chunk_size=32)
    )
    machine.set_policy(make_policy("nomad", machine))
    workload = RandomTraceWorkload(200, 0.5, trace, seed=seed)
    machine.run_workload(workload)
    check_invariants(machine)
    for node in machine.tiers.nodes:
        assert node.nr_free + node.nr_used == node.nr_pages
    # Every shadow is a used slow frame not mapped anywhere.
    nr_shadows = machine.policy.shadow_index.nr_shadows
    assert nr_shadows <= machine.tiers.slow.nr_used


@settings(max_examples=15, deadline=None)
@given(
    trace=trace_strategy,
)
def test_dirty_bit_tracks_writes(trace):
    """After any trace, a page's dirty bit is set iff the trace wrote it
    since the PTE was last replaced -- with no policy installed, that is
    simply 'ever written'."""
    machine = Machine(
        tiny_platform(fast_gb=2.0, slow_gb=2.0), MachineConfig(chunk_size=32)
    )
    machine.set_policy(make_policy("no-migration", machine))
    workload = RandomTraceWorkload(64, 1.0, trace)
    machine.run_workload(workload)
    pt = workload.space.page_table
    written = set()
    for v, w in trace:
        if w:
            written.add(workload._start + (v % 64))
    for vpn in pt.mapped_vpns():
        vpn = int(vpn)
        assert pt.is_dirty(vpn) == (vpn in written)


@settings(max_examples=15, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=300)
)
def test_access_counts_conserved(vpn_seeds):
    """reads + writes in the result always equal the trace length."""
    machine = Machine(tiny_platform(), MachineConfig(chunk_size=16))
    machine.set_policy(make_policy("no-migration", machine))
    trace = [(v, v % 3 == 0) for v in vpn_seeds]
    workload = RandomTraceWorkload(32, 0.5, trace)
    report = machine.run_workload(workload)
    assert report.overall.reads + report.overall.writes == len(trace)
