"""Co-scheduled workloads sharing one tiered memory."""

import pytest

from repro import Machine, MachineConfig
from repro.policies import make_policy
from repro.workloads import SeqScanWorkload, ZipfianMicrobench

from ..conftest import tiny_platform
from .invariants import check_invariants


def build(policy="nomad", fast_gb=2.0, slow_gb=4.0):
    machine = Machine(
        tiny_platform(fast_gb=fast_gb, slow_gb=slow_gb),
        MachineConfig(chunk_size=64),
    )
    machine.set_policy(make_policy(policy, machine))
    return machine


def test_two_workloads_complete():
    machine = build()
    hot = ZipfianMicrobench(wss_gb=1.0, rss_gb=1.0, total_accesses=20_000, seed=1)
    scan = SeqScanWorkload(rss_gb=2.0, total_accesses=20_000, seed=2)
    reports = machine.run_workloads([hot, scan])
    assert len(reports) == 2
    assert reports[0].overall.accesses == 20_000
    assert reports[1].overall.accesses == 20_000
    assert hot.finished and scan.finished
    check_invariants(machine)


def test_each_workload_gets_its_own_core():
    machine = build()
    a = ZipfianMicrobench(wss_gb=0.5, rss_gb=0.5, total_accesses=5_000, seed=1)
    b = ZipfianMicrobench(wss_gb=0.5, rss_gb=0.5, total_accesses=5_000, seed=2)
    machine.run_workloads([a, b])
    assert machine.stats.breakdown("app0").get("user", 0) > 0
    assert machine.stats.breakdown("app1").get("user", 0) > 0


def test_reports_are_per_workload():
    machine = build()
    # One memory-bound, one compute-heavy workload: very different
    # per-access times must show up in their separate reports.
    fast_wl = ZipfianMicrobench(wss_gb=0.5, rss_gb=0.5, total_accesses=10_000, seed=1)
    slow_wl = SeqScanWorkload(rss_gb=3.0, total_accesses=10_000, seed=2)
    reports = machine.run_workloads([fast_wl, slow_wl])
    assert (
        reports[0].overall.avg_access_cycles < reports[1].overall.avg_access_cycles
    )


def test_tenants_contend_for_fast_tier():
    """A co-runner that floods the fast tier slows the victim down
    relative to running alone."""
    solo = build()
    victim_alone = ZipfianMicrobench(
        wss_gb=1.0, rss_gb=1.0, total_accesses=30_000, seed=1
    )
    solo_report = solo.run_workload(victim_alone)

    shared = build()
    victim = ZipfianMicrobench(wss_gb=1.0, rss_gb=1.0, total_accesses=30_000, seed=1)
    bully = SeqScanWorkload(rss_gb=3.5, total_accesses=30_000, seed=2)
    victim_report, _ = shared.run_workloads([victim, bully])
    # Contention cannot make the victim faster.
    assert (
        victim_report.overall.bandwidth_gbps
        <= solo_report.overall.bandwidth_gbps * 1.05
    )
    check_invariants(shared)


def test_custom_cpu_names():
    machine = build()
    a = SeqScanWorkload(rss_gb=0.5, total_accesses=2_000, seed=1)
    b = SeqScanWorkload(rss_gb=0.5, total_accesses=2_000, seed=2)
    machine.run_workloads([a, b], app_cpus=["tenant-a", "tenant-b"])
    assert "tenant-a" in machine.cpus.names()
    assert "tenant-b" in machine.cpus.names()


def test_validation():
    machine = build()
    with pytest.raises(ValueError):
        machine.run_workloads([])
    with pytest.raises(ValueError):
        machine.run_workloads(
            [SeqScanWorkload(rss_gb=0.5, total_accesses=100)],
            app_cpus=["a", "b"],
        )


@pytest.mark.parametrize("policy", ["tpp", "nomad", "memtis-default"])
def test_invariants_with_three_tenants(policy):
    machine = build(policy)
    tenants = [
        ZipfianMicrobench(wss_gb=0.8, rss_gb=0.8, total_accesses=10_000, seed=i)
        for i in range(3)
    ]
    reports = machine.run_workloads(tenants)
    assert all(r.overall.accesses == 10_000 for r in reports)
    check_invariants(machine)
