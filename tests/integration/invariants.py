"""Whole-machine invariants checked after arbitrary simulation runs."""

from repro.mmu.pte import PTE_SOFT_SHADOW_RW, PTE_WRITE

__all__ = ["check_invariants"]


def check_invariants(machine) -> None:
    _check_frame_accounting(machine)
    _check_lru_consistency(machine)
    _check_shadow_invariants(machine)


def _check_frame_accounting(machine) -> None:
    """Every present PTE points at a frame that maps it back, and no
    free frame is mapped or on an LRU list."""
    for space in machine.spaces:
        pt = space.page_table
        for vpn in pt.mapped_vpns():
            vpn = int(vpn)
            gpfn = int(pt.gpfn[vpn])
            assert gpfn >= 0, f"present vpn {vpn} with invalid gpfn"
            frame = machine.tiers.frame(gpfn)
            assert (space, vpn) in frame.rmap, (
                f"vpn {vpn} -> gpfn {gpfn} missing rmap entry"
            )
    for node in machine.tiers.nodes:
        free = set(node._free)
        for pfn in free:
            frame = node.frames[pfn]
            assert not frame.mapped, f"free pfn {pfn} is mapped"
            assert not frame.on_lru, f"free pfn {pfn} on LRU"
            assert not frame.is_shadow, f"free pfn {pfn} is a shadow"
        assert len(free) == node.nr_free, "free-list duplication"


def _check_lru_consistency(machine) -> None:
    """LRU flag state matches list membership, one list per frame."""
    lru = machine.lru
    for node in machine.tiers.nodes:
        nid = node.node_id
        active = set(map(id, lru.active[nid]))
        inactive = set(map(id, lru.inactive[nid]))
        assert not active & inactive, "frame on both LRU lists"
        for frame in lru.active[nid]:
            assert frame.on_lru and frame.active
            assert frame.node_id == nid
        for frame in lru.inactive[nid]:
            assert frame.on_lru and not frame.active
            assert frame.node_id == nid


def _check_shadow_invariants(machine) -> None:
    """Section 3.2's correctness conditions for the shadow index."""
    policy = machine.policy
    index = getattr(policy, "shadow_index", None)
    if index is None:
        return
    for gpfn, shadow in index.xarray.items():
        master = machine.tiers.frame(gpfn)
        assert master.shadowed, f"indexed master {gpfn} lost SHADOWED flag"
        assert shadow.is_shadow, f"shadow of {gpfn} lost IS_SHADOW flag"
        assert not shadow.mapped, "shadow page is mapped"
        assert not shadow.on_lru, "shadow page on LRU"
        assert shadow.node_id == 1, "shadow page not on the slow tier"
        # A live shadow implies a clean, write-protected master: stores
        # would have taken the shadow fault and discarded the shadow.
        for space, vpn in master.rmap:
            flags = int(space.page_table.flags[vpn])
            if flags & PTE_SOFT_SHADOW_RW:
                assert not flags & PTE_WRITE, (
                    "shadowed master writable while shadow is live"
                )
