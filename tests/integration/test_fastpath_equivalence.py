"""Two-speed engine equivalence: fast path on == off, bit for bit.

The batched fast path (:mod:`repro.sim.fastpath`) promises that enabling
it changes *nothing* simulated -- cycles, counters, PTE state, window
aggregates -- only wall-clock speed. These tests pin that promise from
three angles: hypothesis-driven random traces across every policy, a
deterministic streaming run that must engage the vectorized batch
commit, and the THP arm where huge-folio mappings flow through the
validation masks.
"""

import dataclasses

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Machine, MachineConfig
from repro.bench.sweep import counter_digest
from repro.policies import make_policy

from ..conftest import tiny_platform
from .test_properties import RandomTraceWorkload, trace_strategy


def _run_trace(policy, nr_pages, fast_fraction, trace, fastpath, chunk=32):
    """One full machine run; returns every simulated quantity we pin."""
    cfg = MachineConfig(chunk_size=chunk, fastpath_enabled=fastpath)
    machine = Machine(tiny_platform(fast_gb=1.0, slow_gb=2.0), cfg)
    machine.set_policy(make_policy(policy, machine))
    workload = RandomTraceWorkload(nr_pages, fast_fraction, trace)
    report = machine.run_workload(workload)
    pt = workload.space.page_table
    return {
        "cycles": report.cycles,
        "digest": counter_digest(report.counters),
        "counters": dict(report.counters),
        "avg_access_cycles": report.overall.avg_access_cycles,
        "bandwidth_gbps": report.overall.bandwidth_gbps,
        "flags": pt.flags.copy(),
        "gpfn": pt.gpfn.copy(),
        "last_access": pt.last_access.copy(),
        "last_write": pt.last_write.copy(),
    }


def _assert_identical(fast, slow):
    assert fast["cycles"] == slow["cycles"]
    assert fast["digest"] == slow["digest"]
    assert fast["counters"] == slow["counters"]
    assert fast["avg_access_cycles"] == slow["avg_access_cycles"]
    assert fast["bandwidth_gbps"] == slow["bandwidth_gbps"]
    for key in ("flags", "gpfn", "last_access", "last_write"):
        np.testing.assert_array_equal(fast[key], slow[key], err_msg=key)


@settings(max_examples=15, deadline=None)
@given(
    policy=st.sampled_from(["no-migration", "tpp", "memtis-default", "nomad"]),
    nr_pages=st.integers(min_value=4, max_value=500),
    fast_fraction=st.floats(min_value=0.0, max_value=1.0),
    trace=trace_strategy,
    chunk=st.sampled_from([8, 32, 100]),
)
def test_fastpath_matches_slow_path(policy, nr_pages, fast_fraction, trace, chunk):
    """Property: any trace, any policy, any chunking -- identical runs."""
    fast = _run_trace(policy, nr_pages, fast_fraction, trace, True, chunk)
    slow = _run_trace(policy, nr_pages, fast_fraction, trace, False, chunk)
    _assert_identical(fast, slow)


def test_vectorized_batch_commit_engages_and_matches(monkeypatch):
    """A fault-free streaming run must take the vectorized batch path --
    guarding against silent de-vectorization -- and still match the slow
    path exactly."""
    from repro.sim import fastpath as fp

    captured = []
    orig_init = fp.FastPathExecutor.__init__

    def spy(self, machine, max_batch=32):
        orig_init(self, machine, max_batch)
        captured.append(self)

    monkeypatch.setattr(fp.FastPathExecutor, "__init__", spy)

    # Sequential sweeps over an all-fast working set: zero runtime
    # faults after populate, uniform chunks -- the vectorized cell.
    trace = [(i % 64, i % 3 == 0) for i in range(4000)]
    fast = _run_trace("no-migration", 64, 1.0, trace, True, chunk=50)
    assert captured, "fast path never constructed despite fastpath_enabled"
    assert sum(e.vector_batches for e in captured) > 0, (
        "vectorized batch commit never engaged on a fault-free stream"
    )
    assert sum(e.slow_chunks for e in captured) == 0
    slow = _run_trace("no-migration", 64, 1.0, trace, False, chunk=50)
    _assert_identical(fast, slow)


def test_fastpath_matches_slow_path_with_thp():
    """Huge-folio mappings (PTE_HUGE set) flow through the fast path's
    validation and folio-head TLB noting; on/off must stay identical."""
    from repro.bench.experiments.thp import thp_config
    from repro.bench.runner import run_experiment
    from repro.workloads import ZipfianMicrobench

    def arm(fastpath):
        cfg = dataclasses.replace(thp_config(True), fastpath_enabled=fastpath)
        result = run_experiment(
            "A",
            "tpp",
            lambda: ZipfianMicrobench.scenario(
                "small", write_ratio=0.5, total_accesses=20_000, seed=7,
                thp=True,
            ),
            config=cfg,
        )
        report = result.report
        return report.cycles, counter_digest(report.counters)

    assert arm(True) == arm(False)


def test_repro_fastpath_env_knob(monkeypatch):
    """REPRO_FASTPATH is the no-rebuild bisection switch: falsy spellings
    disable the fast path for every new MachineConfig, anything else (or
    unset) leaves it on."""
    for value in ("0", "off", "FALSE", "no"):
        monkeypatch.setenv("REPRO_FASTPATH", value)
        assert MachineConfig().fastpath_enabled is False, value
    for value in ("1", "on", "yes", ""):
        monkeypatch.setenv("REPRO_FASTPATH", value)
        assert MachineConfig().fastpath_enabled is True, value
    monkeypatch.delenv("REPRO_FASTPATH")
    assert MachineConfig().fastpath_enabled is True
    # An explicit constructor argument beats the environment.
    monkeypatch.setenv("REPRO_FASTPATH", "0")
    assert MachineConfig(fastpath_enabled=True).fastpath_enabled is True
