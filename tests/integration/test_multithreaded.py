"""Multi-threaded applications: one address space, many cores."""

import pytest

from repro import Machine, MachineConfig
from repro.policies import make_policy
from repro.workloads import ZipfianMicrobench

from ..conftest import tiny_platform
from .invariants import check_invariants


def build(policy="nomad"):
    machine = Machine(
        tiny_platform(fast_gb=2.0, slow_gb=2.0), MachineConfig(chunk_size=64)
    )
    machine.set_policy(make_policy(policy, machine))
    return machine


def test_threads_split_the_access_stream():
    machine = build()
    wl = ZipfianMicrobench(wss_gb=1.5, rss_gb=2.5, total_accesses=20_000)
    report = machine.run_workload(wl, threads=4)
    assert wl.finished
    assert report.overall.accesses == 20_000
    # All four cores did user work.
    for t in range(4):
        assert machine.stats.breakdown(f"app{t}").get("user", 0) > 0
    check_invariants(machine)


def test_single_thread_path_unchanged():
    machine = build()
    wl = ZipfianMicrobench(wss_gb=1.0, rss_gb=1.0, total_accesses=5_000)
    report = machine.run_workload(wl, threads=1)
    assert report.overall.accesses == 5_000
    assert machine.stats.breakdown("app0").get("user", 0) > 0


def test_threads_trigger_multi_cpu_shootdowns():
    """Pages touched by several cores need IPIs on migration -- the
    Section 3.3 overhead."""
    machine = build()
    wl = ZipfianMicrobench(
        wss_gb=1.5, rss_gb=2.5, total_accesses=40_000, seed=3
    )
    machine.run_workload(wl, threads=4)
    assert machine.stats.get("tlb.shootdown_ipis") > 0
    # At least some shootdowns hit more than one remote CPU.
    assert (
        machine.stats.get("tlb.shootdown_ipis")
        > machine.stats.get("tlb.shootdowns") * 0.2
    )


def test_threads_increase_aggregate_bandwidth():
    def run(threads):
        machine = build("no-migration")
        wl = ZipfianMicrobench(
            wss_gb=1.0, rss_gb=1.0, total_accesses=20_000, seed=1
        )
        return machine.run_workload(wl, threads=threads)

    one = run(1)
    four = run(4)
    # Four cores drain the same stream in ~1/4 the wall time.
    assert four.cycles < 0.5 * one.cycles
    assert four.overall.bandwidth_gbps > 2.0 * one.overall.bandwidth_gbps


@pytest.mark.parametrize("policy", ["tpp", "nomad"])
def test_multithreaded_invariants_under_pressure(policy):
    machine = build(policy)
    wl = ZipfianMicrobench(
        wss_gb=3.0, rss_gb=3.0, total_accesses=30_000, write_ratio=0.3
    )
    report = machine.run_workload(wl, threads=3)
    assert report.overall.accesses == 30_000
    check_invariants(machine)


def test_invalid_thread_count():
    machine = build()
    wl = ZipfianMicrobench(wss_gb=1.0, rss_gb=1.0, total_accesses=100)
    with pytest.raises(ValueError):
        machine.run_workload(wl, threads=0)
