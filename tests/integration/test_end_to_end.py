"""End-to-end runs on small machines: every policy, key cross-checks,
robustness, determinism."""

import pytest

from repro import Machine, MachineConfig
from repro.policies import make_policy
from repro.workloads import SeqScanWorkload, ZipfianMicrobench

from ..conftest import tiny_platform
from .invariants import check_invariants

POLICIES = ["no-migration", "tpp", "memtis-default", "memtis-quickcool", "nomad"]


def run(policy, wss_gb=1.5, rss_gb=2.5, write_ratio=0.2, accesses=30_000, seed=1,
        fast_gb=2.0, slow_gb=2.0):
    # Defaults give a small-WSS geometry with genuine spill: 1 GB of
    # prefill leaves 1 GB of fast room for a 1.5 GB WSS.
    machine = Machine(
        tiny_platform(fast_gb=fast_gb, slow_gb=slow_gb),
        MachineConfig(chunk_size=64),
    )
    machine.set_policy(make_policy(policy, machine))
    workload = ZipfianMicrobench(
        wss_gb=wss_gb,
        rss_gb=rss_gb,
        write_ratio=write_ratio,
        total_accesses=accesses,
        seed=seed,
    )
    report = machine.run_workload(workload)
    return machine, report


@pytest.mark.parametrize("policy", POLICIES)
def test_policy_completes_and_preserves_invariants(policy):
    machine, report = run(policy)
    assert report.overall.accesses == 30_000
    assert report.overall.bandwidth_gbps > 0
    check_invariants(machine)


@pytest.mark.parametrize("policy", POLICIES)
def test_policy_invariants_under_memory_pressure(policy):
    # WSS exceeds the fast tier: continuous migration pressure.
    machine, report = run(policy, wss_gb=3.0, rss_gb=3.0, write_ratio=0.5)
    check_invariants(machine)
    assert report.overall.accesses == 30_000


def test_migrating_policies_beat_no_migration_when_wss_fits():
    _, nomig = run("no-migration", write_ratio=0.0, accesses=60_000)
    _, nomad = run("nomad", write_ratio=0.0, accesses=60_000)
    assert nomad.stable.bandwidth_gbps > nomig.stable.bandwidth_gbps


def test_nomad_transient_beats_tpp_transient():
    """Asynchronous migration keeps the critical path clear."""
    _, tpp = run("tpp", accesses=60_000, write_ratio=0.0)
    _, nomad = run("nomad", accesses=60_000, write_ratio=0.0)
    assert nomad.transient.bandwidth_gbps > 0.95 * tpp.transient.bandwidth_gbps


def test_nomad_survives_near_capacity_rss():
    """Shadow reclamation prevents OOM when the RSS nearly fills the
    machine (Table 3's robustness claim)."""
    machine = Machine(tiny_platform(fast_gb=2.0, slow_gb=2.0), MachineConfig(chunk_size=64))
    machine.set_policy(make_policy("nomad", machine))
    workload = SeqScanWorkload(rss_gb=3.7, write_ratio=0.0, total_accesses=60_000)
    report = machine.run_workload(workload)  # must not raise OutOfMemoryError
    check_invariants(machine)
    assert report.overall.accesses == 60_000


def test_determinism_same_seed_same_counters():
    _, r1 = run("nomad", seed=5)
    _, r2 = run("nomad", seed=5)
    assert r1.counters == r2.counters
    assert r1.cycles == r2.cycles


def test_different_seeds_differ():
    _, r1 = run("nomad", seed=5)
    _, r2 = run("nomad", seed=6)
    assert r1.cycles != r2.cycles


def test_shadow_faults_only_under_nomad_writes():
    machine, report = run("nomad", write_ratio=1.0)
    assert report.counters.get("nomad.shadow_faults", 0) > 0
    machine2, report2 = run("tpp", write_ratio=1.0)
    assert report2.counters.get("nomad.shadow_faults", 0) == 0


def test_remap_demotions_happen_under_pressure_reads():
    machine, report = run("nomad", wss_gb=3.0, rss_gb=3.0, write_ratio=0.0,
                          accesses=60_000)
    assert report.counters.get("nomad.remap_demotions", 0) > 0


def test_run_report_breakdowns_cover_cpus():
    machine, report = run("nomad")
    assert "app0" in report.breakdowns
    assert "kpromote" in report.breakdowns


def test_run_cycles_cap_stops_early():
    machine = Machine(tiny_platform(), MachineConfig(chunk_size=64))
    machine.set_policy(make_policy("no-migration", machine))
    workload = ZipfianMicrobench(
        wss_gb=1.0, rss_gb=1.0, total_accesses=10_000_000
    )
    report = machine.run_workload(workload, run_cycles=1_000_000)
    assert report.cycles <= 1_000_001
    assert report.overall.accesses < 10_000_000
