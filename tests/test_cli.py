"""The command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig1", "fig7", "tab3", "tab4", "abl-variants"):
        assert name in out


def test_experiments_cover_all_figures_and_tables():
    expected = {
        "tab1", "fig1", "fig2", "fig7", "fig8", "fig9", "fig10", "fig11",
        "fig12", "fig13", "fig14", "fig15", "fig16", "tab2", "tab3", "tab4",
        "abl-variants", "abl-reclaim", "timeline", "abort_timeline",
        "thp_vs_base", "multi_tenant_fairness", "tier_leaderboard",
    }
    assert expected == set(EXPERIMENTS)


def test_run_unknown_experiment_exit_code(capsys):
    assert main(["run", "fig99"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err
    assert "fig99" in err


def test_run_failing_experiment_names_it_and_exits_nonzero(capsys, monkeypatch):
    from repro.bench.experiments.registry import ExperimentSpec

    def explode(accesses, platform):
        raise RuntimeError("injected failure")

    monkeypatch.setitem(
        EXPERIMENTS,
        "boom",
        ExperimentSpec("boom", "always fails", explode, lambda r: None),
    )
    assert main(["run", "boom"]) == 1
    err = capsys.readouterr().err
    assert "'boom' failed" in err
    assert "injected failure" in err  # traceback is printed, not swallowed


def test_run_small_experiment(capsys):
    assert main(["run", "tab3", "--accesses", "20000"]) == 0
    out = capsys.readouterr().out
    assert "Table 3" in out
    assert "rss_gb" in out


def test_run_with_platform_override(capsys):
    assert main(["run", "fig2", "--accesses", "20000", "--platform", "B"]) == 0
    assert "Figure 2" in capsys.readouterr().out


def test_micro_command(capsys):
    assert (
        main(
            [
                "micro",
                "--policy",
                "tpp",
                "--scenario",
                "small",
                "--accesses",
                "20000",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "transient" in out and "stable" in out
    assert "Counters" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_trace_command_stdout(capsys):
    assert (
        main(
            [
                "trace",
                "--policy",
                "nomad",
                "--scenario",
                "small",
                "--accesses",
                "15000",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert out.startswith("time_cycles,event,amount")


def test_trace_command_file(tmp_path, capsys):
    path = tmp_path / "trace.csv"
    assert (
        main(
            [
                "trace",
                "--accesses",
                "15000",
                "--output",
                str(path),
            ]
        )
        == 0
    )
    assert path.read_text().startswith("time_cycles,event,amount")
    assert "Event trace written" in capsys.readouterr().out


def test_trace_command_jsonl_format(capsys):
    import json

    assert (
        main(
            [
                "trace",
                "--accesses",
                "15000",
                "--write-ratio",
                "0.3",
                "--format",
                "jsonl",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    records = [json.loads(line) for line in out.splitlines() if line]
    assert records
    assert all({"ts", "name", "args"} <= set(r) for r in records)


def test_trace_command_chrome_format(tmp_path):
    import json

    path = tmp_path / "trace.json"
    assert (
        main(
            [
                "trace",
                "--accesses",
                "15000",
                "--write-ratio",
                "0.3",
                "--format",
                "chrome",
                "--output",
                str(path),
            ]
        )
        == 0
    )
    doc = json.loads(path.read_text())
    assert doc["traceEvents"]
    assert {"ph", "pid", "name"} <= set(doc["traceEvents"][0])


def test_obs_command_writes_all_exports(tmp_path, capsys):
    out_dir = tmp_path / "obs"
    assert (
        main(
            [
                "obs",
                "--accesses",
                "15000",
                "--output-dir",
                str(out_dir),
            ]
        )
        == 0
    )
    for fname in (
        "events.jsonl",
        "events.csv",
        "metrics.prom",
        "trace.json",
        "gauges.csv",
    ):
        assert (out_dir / fname).exists(), fname
    out = capsys.readouterr().out
    assert "Tracepoints" in out and "Exports" in out


def test_timeline_experiment(capsys):
    assert main(["run", "timeline", "--accesses", "30000"]) == 0
    out = capsys.readouterr().out
    assert "Gauge timeline" in out
    assert "nomad.mpq_depth" in out


def test_sweep_command_writes_deterministic_aggregate(tmp_path, capsys):
    import json

    path = tmp_path / "sweep.json"
    argv = [
        "sweep",
        "--platforms", "A",
        "--policies", "tpp,nomad",
        "--scenarios", "small",
        "--write-ratios", "0.0",
        "--accesses", "4000",
        "--workers", "2",
        "--output", str(path),
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "2/2 ok" in out
    doc = json.loads(path.read_text())
    assert doc["schema"] == "repro-sweep/1"
    assert doc["summary"] == {"total": 2, "ok": 2, "failed": 0}
    # The file holds only the deterministic aggregate.
    assert "wall_time_s" not in json.dumps(doc)


def test_sweep_command_spec_file(tmp_path, capsys):
    import json

    spec = tmp_path / "spec.json"
    spec.write_text(json.dumps({
        "platforms": ["A"], "policies": ["nomad"], "scenarios": ["small"],
        "write_ratios": [0.0], "accesses": [4000], "seeds": [1, 2],
    }))
    assert main(["sweep", "--spec", str(spec)]) == 0
    assert "2/2 ok" in capsys.readouterr().out


def test_sweep_command_reports_failures_in_exit_code(capsys):
    argv = [
        "sweep",
        "--experiments", "no-such-experiment",
        "--accesses", "1000",
    ]
    assert main(argv) == 1
    assert "FAILED" in capsys.readouterr().out


def test_bench_command_quick_profile(tmp_path, capsys, monkeypatch):
    from repro.bench import baseline as bl
    from repro.bench.sweep import SweepSpec

    monkeypatch.setitem(bl.PROFILES, "quick", (
        SweepSpec(platforms=("A",), policies=("nomad",), scenarios=("small",),
                  write_ratios=(0.0,), accesses=(4000,), seeds=(42,),
                  instrument=True),
    ))
    assert main(["bench", "--quick", "--output-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "1/1 ok" in out
    reports = list(tmp_path.glob("BENCH_*.json"))
    assert len(reports) == 1

    from repro.bench.baseline import load_report

    report = load_report(str(reports[0]))
    assert report["profile"] == "quick"
    assert report["jobs"][0]["status"] == "ok"


def test_trace_gen_list(capsys):
    assert main(["trace-gen", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("zipf-drift", "phase-shift", "diurnal"):
        assert name in out


def test_trace_gen_roundtrip_and_replay(tmp_path, capsys):
    trace = str(tmp_path / "t")
    assert main([
        "trace-gen", "gen", "zipf-drift", "--out", trace,
        "--pages", "600", "--accesses", "4000", "--seed", "3",
        "--fast-fraction", "0.5", "--param", "theta0=1.1",
    ]) == 0
    out = capsys.readouterr().out
    assert "4000" in out
    assert main(["trace-gen", "info", trace, "--verify"]) == 0
    assert "zipf-drift" in capsys.readouterr().out

    import json

    assert main([
        "replay", trace, "--policy", "nomad", "--platform", "A", "--json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["workload_counters"]["accesses"] == 4000.0
    assert payload["policy"] == "nomad"
    assert payload["counter_digest"]

    # Streaming and in-RAM replay arms agree bit for bit.
    assert main([
        "replay", trace, "--policy", "nomad", "--platform", "A",
        "--in-ram", "--json",
    ]) == 0
    in_ram = json.loads(capsys.readouterr().out)
    assert in_ram["counter_digest"] == payload["counter_digest"]
    assert in_ram["sim_cycles"] == payload["sim_cycles"]


def test_trace_gen_rejects_bad_params(capsys):
    assert main([
        "trace-gen", "gen", "zipf-drift", "--out", "unused",
        "--param", "bogus=1",
    ]) != 0
    assert "unknown" in capsys.readouterr().err


def test_trace_gen_interleave(tmp_path, capsys):
    trace = str(tmp_path / "multi")
    assert main([
        "trace-gen", "interleave", "--out", trace,
        "--tenants", "3", "--pages", "64", "--accesses", "900",
        "--seed", "5", "--quantum", "32",
    ]) == 0
    capsys.readouterr()
    assert main(["trace-gen", "info", trace, "--verify"]) == 0
    out = capsys.readouterr().out
    assert "tenant" in out

    from repro.workloads import TraceManifest

    manifest = TraceManifest.load(trace)
    assert len(manifest.tenants) == 3
    assert manifest.accesses == 2700  # --accesses is per tenant
    assert manifest.nr_pages == 192


def test_trace_gen_import(tmp_path, capsys):
    src = tmp_path / "dump.csv"
    src.write_text("0,r\n1,w\n2,r\n1,w\n")
    trace = str(tmp_path / "imported")
    assert main(["trace-gen", "import", str(src), "--out", trace]) == 0
    capsys.readouterr()

    from repro.workloads import TraceManifest

    manifest = TraceManifest.load(trace)
    assert manifest.accesses == 4
    assert manifest.doc["writes"] == 2


def test_multi_tenant_fairness_experiment(capsys):
    assert main([
        "run", "multi_tenant_fairness", "--accesses", "8000",
    ]) == 0
    out = capsys.readouterr().out
    assert "Multi-tenant fairness" in out
    assert "jain" in out
    assert "tenant00" in out


def test_sweep_command_trace_generators(tmp_path, capsys):
    import json

    path = tmp_path / "sweep.json"
    argv = [
        "sweep",
        "--platforms", "A",
        "--policies", "nomad",
        "--trace-generators", "zipf-drift",
        "--accesses", "8000",
        "--output", str(path),
    ]
    assert main(argv) == 0
    assert "1/1 ok" in capsys.readouterr().out
    doc = json.loads(path.read_text())
    job = doc["jobs"][0]
    assert job["id"].startswith("trace/A/nomad/zipf-drift/")
    assert job["trace_digest"]
    assert job["counter_digest"]
