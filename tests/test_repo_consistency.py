"""Repository-level consistency: the documentation, CLI, and benchmark
tree must stay in sync as the project evolves."""

from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (REPO / name).read_text()


def bench_files():
    return sorted(p.name for p in (REPO / "benchmarks").glob("bench_*.py"))


def test_core_documents_exist():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        assert (REPO / name).stat().st_size > 1000, f"{name} is missing or thin"


def test_every_paper_artifact_has_a_bench():
    names = bench_files()
    for artifact in (
        "tab01", "fig01", "fig02", "fig07", "fig08", "fig09", "fig10",
        "tab02", "tab03", "fig11", "fig12", "fig13", "fig14", "fig15",
        "fig16", "tab04",
    ):
        assert any(artifact in n for n in names), f"no bench for {artifact}"


def test_experiments_md_covers_every_figure_and_table():
    text = read("EXPERIMENTS.md")
    for artifact in (
        "Table 1", "Figure 1 ", "Figure 2", "Figures 7/8/9", "Table 2",
        "Figure 10", "Table 3", "Figure 11", "Figure 12", "Figure 13",
        "Figure 14", "Figure 15", "Figure 16", "Table 4",
    ):
        assert artifact in text, f"EXPERIMENTS.md missing {artifact!r}"


def test_every_bench_is_referenced_in_docs():
    docs = read("README.md") + read("EXPERIMENTS.md") + read("DESIGN.md")
    for name in bench_files():
        # Ablations are referenced collectively as bench_abl_*.
        if name.startswith("bench_abl_") and "bench_abl_" in docs:
            continue
        assert name in docs, f"{name} not referenced in any document"


def test_design_md_declares_paper_verified():
    text = read("DESIGN.md")
    assert "Paper text verified" in text


def test_cli_and_bench_artifact_sets_agree():
    from repro.cli import EXPERIMENTS

    # Every figN/tabN CLI entry has a bench file counterpart.
    names = " ".join(bench_files())
    for key in EXPERIMENTS:
        if key.startswith(("fig", "tab")):
            num = key.replace("fig", "").replace("tab", "")
            prefix = "fig" if key.startswith("fig") else "tab"
            assert f"{prefix}{int(num):02d}" in names, f"no bench for CLI {key}"


def test_examples_directory_is_documented():
    readme = read("README.md")
    for script in sorted(p.name for p in (REPO / "examples").glob("*.py")):
        assert script in readme, f"examples/{script} not mentioned in README"
