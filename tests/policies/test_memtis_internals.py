"""Memtis internals: threshold sizing, margins, migration mechanics."""

import numpy as np

from repro.mem.frame import FrameFlags
from repro.mem.tiers import FAST_TIER, SLOW_TIER
from repro.policies.memtis import MemtisPolicy

from ..conftest import make_machine


def build(**kwargs):
    m = make_machine()
    kwargs.setdefault("sample_period", 1)
    kwargs.setdefault("llc_pages", 0)
    policy = MemtisPolicy(m, **kwargs)
    m.set_policy(policy)
    space = m.create_space()
    return m, policy, space


def seed_counts(policy, space, counts_by_vpn):
    counts, _touch, _llc = policy._state(space)
    for vpn, value in counts_by_vpn.items():
        counts[vpn] = value


def test_migrate_round_promotes_above_threshold_only():
    m, policy, space = build(min_hot_samples=3.0, promote_budget=64)
    vma = space.mmap(6)
    m.populate(space, vma.vpns(), SLOW_TIER)
    seed_counts(
        policy,
        space,
        {vma.start: 10.0, vma.start + 1: 5.0, vma.start + 2: 1.0},
    )
    policy._migrate_round()
    pt = space.page_table
    tiers = m.tiers.tier_of_gpfn[pt.gpfn[np.asarray(list(vma.vpns()))]]
    assert tiers[0] == FAST_TIER
    assert tiers[1] == FAST_TIER
    assert tiers[2] == SLOW_TIER  # below min_hot_samples
    assert (tiers[3:] == SLOW_TIER).all()  # never sampled


def test_promotion_margin_blocks_borderline_pages():
    m, policy, space = build(min_hot_samples=3.0, promotion_margin=5.0)
    vma = space.mmap(2)
    m.populate(space, vma.vpns(), SLOW_TIER)
    seed_counts(policy, space, {vma.start: 4.0, vma.start + 1: 9.0})
    policy._migrate_round()
    pt = space.page_table
    assert m.tiers.tier_of(int(pt.gpfn[vma.start])) == SLOW_TIER  # 4 < 3+5
    assert m.tiers.tier_of(int(pt.gpfn[vma.start + 1])) == FAST_TIER  # 9 >= 8


def test_promote_budget_caps_per_round():
    m, policy, space = build(min_hot_samples=1.0, promote_budget=2)
    vma = space.mmap(8)
    m.populate(space, vma.vpns(), SLOW_TIER)
    seed_counts(policy, space, {v: 10.0 for v in vma.vpns()})
    policy._migrate_round()
    pt = space.page_table
    tiers = m.tiers.tier_of_gpfn[pt.gpfn[np.asarray(list(vma.vpns()))]]
    assert int((tiers == FAST_TIER).sum()) == 2


def test_threshold_rises_with_occupancy():
    """When more hot pages exist than fast capacity, the kth-largest
    count gates promotion, not min_hot_samples."""
    m, policy, space = build(min_hot_samples=1.0, promote_budget=1000)
    capacity = m.tiers.fast.nr_pages
    vma = space.mmap(capacity + 64)
    m.populate(space, vma.vpns(), SLOW_TIER)
    # All pages sampled, with the last 64 clearly hotter.
    seed_counts(policy, space, {v: 2.0 for v in vma.vpns()})
    seed_counts(
        policy, space, {v: 50.0 for v in list(vma.vpns())[-64:]}
    )
    policy._migrate_round()
    pt = space.page_table
    hot_tiers = m.tiers.tier_of_gpfn[pt.gpfn[np.asarray(list(vma.vpns())[-64:])]]
    assert (hot_tiers == FAST_TIER).all()


def test_migrate_vpn_skips_locked_frames():
    m, policy, space = build()
    vma = space.mmap(1)
    m.populate(space, [vma.start], SLOW_TIER)
    frame = m.tiers.frame(int(space.page_table.gpfn[vma.start]))
    frame.set_flag(FrameFlags.LOCKED)
    assert policy._migrate_vpn(space, vma.start, FAST_TIER) == 0.0
    frame.clear_flag(FrameFlags.LOCKED)


def test_migrate_vpn_noop_for_unmapped():
    m, policy, space = build()
    vma = space.mmap(1)
    assert policy._migrate_vpn(space, vma.start, FAST_TIER) == 0.0


def test_observer_ignores_foreign_space_after_free():
    """Samples for a space created later still work (lazy state)."""
    m, policy, space = build()
    other = m.create_space("other")
    vma = other.mmap(1)
    m.populate(other, [vma.start], SLOW_TIER)
    m.access.run_chunk(
        other,
        m.cpus.get("app0"),
        np.array([vma.start] * 50, dtype=np.int64),
        np.zeros(50, dtype=bool),
    )
    m.engine.run(until=200_000)
    assert policy._counts[other.asid][vma.start] > 0


def test_cooling_preserves_relative_order():
    m, policy, space = build(cooling_samples=5)
    vma = space.mmap(2)
    m.populate(space, vma.vpns(), SLOW_TIER)
    counts, _t, _l = policy._state(space)
    counts[vma.start] = 40.0
    counts[vma.start + 1] = 10.0
    policy._samples_since_cooling = 10  # force a cooling on next drain
    policy._buffer.append((space.asid, np.array([vma.start])))
    m.engine.run(until=200_000)
    assert counts[vma.start] > counts[vma.start + 1] > 0
