"""The adaptive (Section-5) migration switch."""

import numpy as np

from repro.mem.tiers import SLOW_TIER
from repro.mmu.pte import PTE_PROT_NONE
from repro.policies import make_policy
from repro.policies.adaptive import AdaptiveNomadPolicy, ThrashDetector
from repro.workloads import ZipfianMicrobench

from ..conftest import make_machine


def test_factory_builds_adaptive():
    m = make_machine()
    policy = make_policy("nomad-adaptive", m)
    assert isinstance(policy, AdaptiveNomadPolicy)
    assert policy.promotion_enabled


# ----------------------------------------------------------------------
# ThrashDetector unit behaviour
# ----------------------------------------------------------------------
def test_detector_quiet_system_not_thrashing():
    m = make_machine()
    detector = ThrashDetector(m)
    state = detector.sample()
    assert not state.thrashing
    assert state.volume == 0


def test_detector_balanced_churn_trips_after_two_windows():
    m = make_machine()
    detector = ThrashDetector(m, volume_fraction=0.01)
    for i in range(1, 3):
        m.stats.bump("migrate.promotions", 100)
        m.stats.bump("migrate.demotions", 95)
        state = detector.sample()
    assert state.thrashing


def test_detector_one_hot_window_is_not_enough():
    m = make_machine()
    detector = ThrashDetector(m, volume_fraction=0.01)
    m.stats.bump("migrate.promotions", 100)
    m.stats.bump("migrate.demotions", 95)
    assert not detector.sample().thrashing


def test_detector_unbalanced_volume_is_not_thrashing():
    """Heavy promotion with little demotion is a warm-up, not a thrash."""
    m = make_machine()
    detector = ThrashDetector(m, volume_fraction=0.01)
    for _ in range(3):
        m.stats.bump("migrate.promotions", 200)
        m.stats.bump("migrate.demotions", 5)
        state = detector.sample()
    assert not state.thrashing


def test_detector_low_volume_is_not_thrashing():
    m = make_machine()
    detector = ThrashDetector(m, volume_fraction=0.5)
    for _ in range(3):
        m.stats.bump("migrate.promotions", 3)
        m.stats.bump("migrate.demotions", 3)
        state = detector.sample()
    assert not state.thrashing


def test_detector_reset_clears_streak():
    m = make_machine()
    detector = ThrashDetector(m, volume_fraction=0.01)
    m.stats.bump("migrate.promotions", 100)
    m.stats.bump("migrate.demotions", 95)
    detector.sample()
    detector.reset()
    m.stats.bump("migrate.promotions", 200)
    m.stats.bump("migrate.demotions", 190)
    assert not detector.sample().thrashing


# ----------------------------------------------------------------------
# Policy behaviour
# ----------------------------------------------------------------------
def run_workload(policy_name, wss_gb, rss_gb, accesses=40_000, **policy_kwargs):
    m = make_machine(fast_gb=2.0, slow_gb=2.0)
    m.set_policy(make_policy(policy_name, m, **policy_kwargs))
    wl = ZipfianMicrobench(
        wss_gb=wss_gb, rss_gb=rss_gb, total_accesses=accesses, seed=3
    )
    report = m.run_workload(wl)
    return m, report


def test_breaker_trips_under_thrashing():
    m, report = run_workload(
        "nomad-adaptive", wss_gb=3.0, rss_gb=3.0, accesses=60_000,
        window_cycles=500_000.0, volume_fraction=0.02,
    )
    assert report.counters.get("adaptive.breaker_trips", 0) > 0
    assert report.counters.get("adaptive.suppressed_faults", 0) > 0


def test_no_trips_when_wss_fits():
    m, report = run_workload(
        "nomad-adaptive", wss_gb=1.0, rss_gb=1.0, accesses=40_000,
        window_cycles=500_000.0,
    )
    assert report.counters.get("adaptive.suppressed_faults", 0) == 0


def test_adaptive_reduces_migration_volume_under_thrash():
    _, plain = run_workload("nomad", wss_gb=3.0, rss_gb=3.0, accesses=60_000)
    _, adaptive = run_workload(
        "nomad-adaptive", wss_gb=3.0, rss_gb=3.0, accesses=60_000,
        window_cycles=500_000.0, volume_fraction=0.02,
    )
    assert adaptive.counters.get("migrate.promotions", 0) < plain.counters.get(
        "migrate.promotions", 0
    )


def test_probing_reenables_promotion():
    m, report = run_workload(
        "nomad-adaptive", wss_gb=3.0, rss_gb=3.0, accesses=80_000,
        window_cycles=300_000.0, volume_fraction=0.02, cooldown_windows=2,
    )
    assert report.counters.get("adaptive.probes", 0) > 0


def test_suppressed_fault_still_unprotects_page():
    m = make_machine(fast_gb=2.0, slow_gb=2.0)
    policy = make_policy("nomad-adaptive", m)
    m.set_policy(policy)
    policy.promotion_enabled = False
    space = m.create_space()
    vma = space.mmap(1)
    m.populate(space, [vma.start], SLOW_TIER)
    space.page_table.set_flags(vma.start, PTE_PROT_NONE)
    result = m.access.run_chunk(
        space,
        m.cpus.get("app0"),
        np.array([vma.start], dtype=np.int64),
        np.array([False]),
    )
    assert result.faults == 1
    assert not space.page_table.is_prot_none(vma.start)
    # Page stayed put; no queue work happened.
    assert m.tiers.tier_of(int(space.page_table.gpfn[vma.start])) == SLOW_TIER
    assert len(policy.pcq) == 0


def test_trip_flushes_pending_queue():
    m = make_machine()
    policy = make_policy("nomad-adaptive", m)
    m.set_policy(policy)
    space = m.create_space()
    vma = space.mmap(2)
    m.populate(space, vma.vpns(), SLOW_TIER)
    from repro.core.queues import MigrationRequest

    for vpn in vma.vpns():
        frame = m.tiers.frame(int(space.page_table.gpfn[vpn]))
        policy.mpq.push(MigrationRequest(frame, space, vpn, frame.generation))
    policy._trip(probe_failed=False)
    assert len(policy.mpq) == 0
    assert not policy.promotion_enabled


def test_failed_probe_backs_off_exponentially():
    m = make_machine()
    policy = make_policy("nomad-adaptive", m, cooldown_windows=4)
    m.set_policy(policy)
    policy._trip(probe_failed=False)
    assert policy._current_cooldown == 4
    policy._probing = True
    policy._trip(probe_failed=True)
    assert policy._current_cooldown == 8
    policy._probing = True
    policy._trip(probe_failed=True)
    assert policy._current_cooldown == 16
