"""TPP: synchronous promotion, activation gating, retry storms."""

import numpy as np

from repro.mem.tiers import FAST_TIER, SLOW_TIER
from repro.mmu.pte import PTE_PROT_NONE
from repro.policies.tpp import TppPolicy

from ..conftest import make_machine


def build(**kwargs):
    m = make_machine()
    policy = TppPolicy(m, **kwargs)
    m.set_policy(policy)
    space = m.create_space()
    return m, policy, space


def slow_page(m, space):
    vma = space.mmap(1)
    m.populate(space, [vma.start], SLOW_TIER)
    return vma.start


def touch(m, space, vpn, write=False):
    return m.access.run_chunk(
        space,
        m.cpus.get("app0"),
        np.array([vpn], dtype=np.int64),
        np.array([write], dtype=bool),
    )


def arm(space, vpn):
    space.page_table.set_flags(vpn, PTE_PROT_NONE)


def test_hint_fault_unprotects():
    m, policy, space = build()
    vpn = slow_page(m, space)
    arm(space, vpn)
    result = touch(m, space, vpn)
    assert result.faults == 1
    assert not space.page_table.is_prot_none(vpn)
    assert m.stats.get("tpp.hint_faults") == 1


def test_first_fault_does_not_promote():
    m, policy, space = build()
    vpn = slow_page(m, space)
    arm(space, vpn)
    touch(m, space, vpn)
    assert m.tiers.tier_of(int(space.page_table.gpfn[vpn])) == SLOW_TIER


def test_active_page_promoted_synchronously():
    m, policy, space = build(hint_fault_latency_cycles=0.0)
    vpn = slow_page(m, space)
    frame = m.tiers.frame(int(space.page_table.gpfn[vpn]))
    m.lru.force_activate(frame)
    arm(space, vpn)
    result = touch(m, space, vpn)
    assert m.tiers.tier_of(int(space.page_table.gpfn[vpn])) == FAST_TIER
    assert m.stats.get("tpp.promotions") == 1
    # The whole migration happened inside the fault, on the app's time.
    assert result.fault_cycles > m.costs.page_copy_cycles(SLOW_TIER, FAST_TIER)
    assert m.stats.breakdown("app0").get("promotion", 0) > 0


def test_low_fault_latency_promotes_without_activation():
    m, policy, space = build(hint_fault_latency_cycles=1e9)
    vpn = slow_page(m, space)
    arm(space, vpn)
    touch(m, space, vpn)  # first fault: records the timestamp
    arm(space, vpn)
    touch(m, space, vpn)  # second fault soon after: promote
    assert m.tiers.tier_of(int(space.page_table.gpfn[vpn])) == FAST_TIER


def test_inactive_page_needs_up_to_pagevec_worth_of_faults():
    """With the latency path disabled, the Section-3.1 pathology: the
    page is re-armed and re-faulted until the pagevec drains."""
    m, policy, space = build(hint_fault_latency_cycles=0.0)
    vpn = slow_page(m, space)
    faults = 0
    while m.tiers.tier_of(int(space.page_table.gpfn[vpn])) == SLOW_TIER:
        arm(space, vpn)
        touch(m, space, vpn)
        faults += 1
        assert faults < 25, "page never promoted"
    assert faults >= 15  # referenced + 15-slot pagevec + promoting fault


def test_promotion_disabled():
    m, policy, space = build(promotion_enabled=False, hint_fault_latency_cycles=1e9)
    vpn = slow_page(m, space)
    for _ in range(5):
        arm(space, vpn)
        touch(m, space, vpn)
    assert m.tiers.tier_of(int(space.page_table.gpfn[vpn])) == SLOW_TIER


def test_retry_storm_on_full_fast_tier():
    m, policy, space = build(hint_fault_latency_cycles=1e9)
    vpn = slow_page(m, space)
    while m.tiers.fast.nr_free:
        m.tiers.alloc_on(FAST_TIER)
    arm(space, vpn)
    touch(m, space, vpn)
    arm(space, vpn)
    result = touch(m, space, vpn)
    assert m.stats.get("tpp.promotion_retry_storms") == 1
    # The storm burns app-side cycles: the kernel-CPU-burst pathology.
    assert result.fault_cycles > 9 * m.costs.migrate_setup


def test_demote_page_moves_to_slow():
    m, policy, space = build()
    vma = space.mmap(1)
    m.populate(space, [vma.start], FAST_TIER)
    frame = m.tiers.frame(int(space.page_table.gpfn[vma.start]))
    ok, cycles = policy.demote_page(frame, m.cpus.get("kswapd0"))
    assert ok
    assert cycles > 0
    assert m.tiers.tier_of(int(space.page_table.gpfn[vma.start])) == SLOW_TIER
    assert m.stats.get("tpp.demotions") == 1


def test_demote_rejects_slow_page():
    m, policy, space = build()
    vpn = slow_page(m, space)
    frame = m.tiers.frame(int(space.page_table.gpfn[vpn]))
    assert policy.demote_page(frame, m.cpus.get("kswapd0")) == (False, 0.0)


def test_fast_tier_hint_fault_is_noop_promotion():
    m, policy, space = build()
    vma = space.mmap(1)
    m.populate(space, [vma.start], FAST_TIER)
    arm(space, vma.start)  # should not normally happen; be robust
    touch(m, space, vma.start)
    assert m.stats.get("tpp.promotions") == 0
