"""Memtis: sampling, cooling, LLC filtering, background migration."""

import numpy as np
import pytest

from repro.mem.tiers import FAST_TIER, SLOW_TIER
from repro.policies.memtis import MemtisPolicy

from ..conftest import make_machine


def build(**kwargs):
    m = make_machine()
    kwargs.setdefault("sample_period", 5)
    kwargs.setdefault("llc_pages", 0)
    policy = MemtisPolicy(m, **kwargs)
    m.set_policy(policy)
    space = m.create_space()
    return m, policy, space


def touch_many(m, space, vpns, writes=None):
    vpns = np.asarray(vpns, dtype=np.int64)
    if writes is None:
        writes = np.zeros(len(vpns), dtype=bool)
    return m.access.run_chunk(space, m.cpus.get("app0"), vpns, writes)


def test_sampling_counts_accumulate():
    m, policy, space = build()
    vma = space.mmap(2)
    m.populate(space, vma.vpns(), SLOW_TIER)
    touch_many(m, space, [vma.start] * 50)
    m.engine.run(until=500_000)  # let ksampled drain
    counts = policy._counts[space.asid]
    assert counts[vma.start] >= 5  # ~50/5 samples
    assert m.stats.get("memtis.samples") >= 5


def test_sample_period_thins_samples():
    m, policy, space = build(sample_period=50)
    vma = space.mmap(1)
    m.populate(space, vma.vpns(), SLOW_TIER)
    touch_many(m, space, [vma.start] * 100)
    m.engine.run(until=500_000)
    assert m.stats.get("memtis.samples") <= 3


def test_cooling_halves_counts():
    m, policy, space = build(cooling_samples=10)
    vma = space.mmap(1)
    m.populate(space, vma.vpns(), SLOW_TIER)
    touch_many(m, space, [vma.start] * 300)
    m.engine.run(until=2_000_000)
    assert m.stats.get("memtis.coolings") >= 1


def test_llc_resident_pages_produce_few_samples():
    m, policy, space = build(llc_pages=1, llc_hit_rate=1.0, sample_period=3)
    vma = space.mmap(2)
    m.populate(space, vma.vpns(), SLOW_TIER)
    hot, cold = vma.start, vma.start + 1
    # Make `hot` clearly the most-touched page, refresh the LLC model,
    # then compare sampling rates (period 3 over an alternating pattern
    # samples both pages).
    touch_many(m, space, [hot] * 200 + [cold] * 10)
    m.engine.run(until=2_000_000)  # kmigrated refreshes the LLC set
    counts_before = policy._counts[space.asid].copy()
    touch_many(m, space, [hot, cold] * 150)
    m.engine.run(until=4_000_000)
    delta = policy._counts[space.asid] - counts_before
    # The cache-resident hot page is invisible; the cold one is sampled.
    assert delta[cold] > 0
    assert delta[hot] == 0


def test_cxl_read_invisibility():
    m, policy, space = build(cxl_reads_invisible=True, sample_period=1, seed=3)
    vma = space.mmap(2)
    m.populate(space, vma.vpns(), SLOW_TIER)
    reads = [vma.start] * 200
    writes_vpns = [vma.start + 1] * 200
    touch_many(m, space, reads)
    touch_many(m, space, writes_vpns, np.ones(200, dtype=bool))
    m.engine.run(until=2_000_000)
    counts = policy._counts[space.asid]
    # Store samples survive; slow-tier load samples mostly vanish.
    assert counts[vma.start + 1] > 2 * counts[vma.start]


def test_kmigrated_promotes_hot_pages():
    m, policy, space = build(min_hot_samples=1.0)
    vma = space.mmap(4)
    m.populate(space, vma.vpns(), SLOW_TIER)
    hot = vma.start
    for _ in range(10):
        touch_many(m, space, [hot] * 40)
        m.engine.run(until=m.engine.now + 300_000)
    assert m.tiers.tier_of(int(space.page_table.gpfn[hot])) == FAST_TIER
    assert m.stats.get("memtis.promotions") >= 1


def test_cold_pages_demoted_to_make_room_for_hot():
    m, policy, space = build(min_hot_samples=1.0)
    # Fill fast with cold pages, put a hot page on slow.
    cold_vma = space.mmap(m.tiers.fast.nr_pages)
    m.populate(space, cold_vma.vpns(), FAST_TIER)
    hot_vma = space.mmap(1)
    m.populate(space, hot_vma.vpns(), SLOW_TIER)
    for _ in range(10):
        touch_many(m, space, [hot_vma.start] * 40)
        m.engine.run(until=m.engine.now + 300_000)
    # Cold pages were demoted (by kmigrated or the kswapd valve) and the
    # hot page made it to the fast tier.
    assert m.stats.get("migrate.demotions") >= 1
    assert m.tiers.tier_of(int(space.page_table.gpfn[hot_vma.start])) == FAST_TIER


def test_no_hint_faults_under_memtis():
    m, policy, space = build()
    vma = space.mmap(8)
    m.populate(space, vma.vpns(), SLOW_TIER)
    result = touch_many(m, space, list(vma.vpns()) * 5)
    assert result.faults == 0
    assert m.stats.get("fault.hint") == 0


def test_migration_runs_on_kmemtis_core():
    m, policy, space = build(min_hot_samples=1.0)
    vma = space.mmap(2)
    m.populate(space, vma.vpns(), SLOW_TIER)
    for _ in range(10):
        touch_many(m, space, [vma.start] * 40)
        m.engine.run(until=m.engine.now + 300_000)
    breakdown = m.stats.breakdown("kmemtis")
    assert breakdown.get("memtis_migrate", 0) > 0
    assert m.stats.breakdown("app0").get("memtis_migrate", 0) == 0


def test_invalid_sample_period():
    m = make_machine()
    with pytest.raises(ValueError):
        MemtisPolicy(m, sample_period=0)
