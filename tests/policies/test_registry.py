"""The policy factory registry."""

import pytest

from repro.core.nomad import NomadPolicy
from repro.policies import (
    DEFAULT_COOLING_SAMPLES,
    QUICKCOOL_COOLING_SAMPLES,
    MemtisPolicy,
    NoMigrationPolicy,
    TppPolicy,
    make_policy,
)

from ..conftest import make_machine


@pytest.mark.parametrize(
    "name,cls",
    [
        ("no-migration", NoMigrationPolicy),
        ("tpp", TppPolicy),
        ("memtis", MemtisPolicy),
        ("memtis-default", MemtisPolicy),
        ("memtis-quickcool", MemtisPolicy),
        ("nomad", NomadPolicy),
    ],
)
def test_factory_builds(name, cls):
    m = make_machine()
    assert isinstance(make_policy(name, m), cls)


def test_factory_case_insensitive():
    m = make_machine()
    assert isinstance(make_policy("TPP", m), TppPolicy)


def test_factory_unknown():
    m = make_machine()
    with pytest.raises(KeyError):
        make_policy("lru-magic", m)


def test_quickcool_differs_from_default():
    m1 = make_machine()
    default = make_policy("memtis-default", m1)
    m2 = make_machine()
    quick = make_policy("memtis-quickcool", m2)
    assert default.cooling_samples == DEFAULT_COOLING_SAMPLES
    assert quick.cooling_samples == QUICKCOOL_COOLING_SAMPLES
    assert quick.cooling_samples < default.cooling_samples


def test_factory_forwards_kwargs():
    m = make_machine()
    policy = make_policy("nomad", m, shadowing=False, throttle=True)
    assert policy.shadowing is False
    assert policy.kpromote.throttle_enabled is True
