"""The no-migration baseline."""

import numpy as np

from repro.mem.tiers import FAST_TIER, SLOW_TIER
from repro.policies import make_policy
from repro.policies.nomigration import NoMigrationPolicy

from ..conftest import make_machine


def test_pages_never_move():
    m = make_machine()
    m.set_policy(NoMigrationPolicy(m))
    space = m.create_space()
    vma = space.mmap(4)
    m.populate(space, list(vma.vpns())[:2], FAST_TIER)
    m.populate(space, list(vma.vpns())[2:], SLOW_TIER)
    vpns = np.asarray(list(vma.vpns()) * 100, dtype=np.int64)
    m.access.run_chunk(space, m.cpus.get("app0"), vpns, np.zeros(len(vpns), bool))
    m.engine.run(until=10_000_000)
    assert m.stats.get("migrate.promotions") == 0
    assert m.stats.get("migrate.demotions") == 0
    assert m.stats.get("fault.hint") == 0


def test_demote_page_declines():
    m = make_machine()
    policy = NoMigrationPolicy(m)
    m.set_policy(policy)
    frame = m.tiers.alloc_on(FAST_TIER)
    assert policy.demote_page(frame, m.cpus.get("kswapd0")) == (False, 0.0)


def test_allocations_spill_when_fast_full():
    m = make_machine()
    m.set_policy(NoMigrationPolicy(m))
    space = m.create_space()
    vma = space.mmap(m.tiers.fast.nr_pages + 10)
    m.populate(space, vma.vpns(), FAST_TIER)
    pt = space.page_table
    tiers = [m.tiers.tier_of(int(pt.gpfn[v])) for v in vma.vpns()]
    assert tiers.count(SLOW_TIER) >= 10


def test_factory_registry():
    m = make_machine()
    policy = make_policy("no-migration", m)
    assert isinstance(policy, NoMigrationPolicy)
