"""Shared fixtures: small machines, tiny platforms, policy factories."""

import pytest

from repro import Machine, MachineConfig
from repro.sim.platform import Platform


def tiny_platform(fast_gb=1.0, slow_gb=1.0, name="T"):
    """A small platform for fast unit tests (256 pages per tier-GB)."""
    return Platform(
        name=name,
        description="tiny test platform",
        freq_ghz=2.0,
        cpu_count=4,
        read_latency_cycles=(300.0, 900.0),
        read_gbps=(12.0, 4.0),
        write_gbps=(20.0, 20.0),
        fast_gb=fast_gb,
        slow_gb=slow_gb,
    )


@pytest.fixture
def platform():
    return tiny_platform()


@pytest.fixture
def machine():
    return Machine(tiny_platform(), MachineConfig(chunk_size=64))


def make_machine(fast_gb=1.0, slow_gb=1.0, **config_kwargs):
    config_kwargs.setdefault("chunk_size", 64)
    return Machine(
        tiny_platform(fast_gb=fast_gb, slow_gb=slow_gb),
        MachineConfig(**config_kwargs),
    )


@pytest.fixture
def make_machine_fixture():
    return make_machine
